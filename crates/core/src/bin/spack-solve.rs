//! `spack-solve` — a small command-line front end for the ASP-based concretizer.
//!
//! This is the reproduction's analogue of `spack spec` / `spack solve`: it concretizes
//! abstract specs against the built-in curated repository (or a synthetic one) and prints
//! the resulting DAG, the build/reuse partition, the objective vector, and the phase
//! timings the paper instruments.
//!
//! ```text
//! spack-solve spec hdf5@1.10.2 +mpi            # concretize and print the DAG
//! spack-solve spec --greedy hpctoolkit ^mpich  # use the old (incomplete) algorithm
//! spack-solve spec --reuse hdf5                # reuse a synthesized buildcache
//! spack-solve spec --stats hdf5                # show grounder/solver statistics
//! spack-solve spec --explain zlib@9.9         # full "why not" report on UNSAT
//! spack-solve batch requests.txt               # session-mode solve, one spec per line
//! spack-solve providers mpi                    # list providers of a virtual
//! spack-solve list                             # list known packages
//! spack-solve criteria                         # print Table II
//! ```
//!
//! `batch` builds a multi-shot [`spack_concretizer::ConcretizerSession`] — base facts
//! and the logic program are ground exactly once — and answers every line of the file
//! as an incremental request (in parallel), printing a per-line status and a
//! throughput summary. Lines that are empty or start with `#` are skipped.
//!
//! On an unsatisfiable request the solver never answers with a bare "no": the
//! single-grounding diagnosis (unsat core + relaxed error minimization on the same
//! ground program, see `spack_concretizer::diagnose`) always produces specific
//! messages, and `--explain` prints all of them along with the implicated root
//! requirements.
//!
//! Exit codes distinguish *why* a solve did not produce a DAG: `1` for tool errors
//! (bad arguments, parse failures, internal solver errors) and `2` for a well-formed
//! but unsatisfiable request — so scripts can tell "your spec is wrong" from "the
//! tool broke".

use std::process::ExitCode;

use spack_concretizer::{
    describe_priority, ConcretizeError, Concretizer, GreedyConcretizer, SiteConfig, CRITERIA,
};
use spack_repo::{builtin_repo, synth_repo, Repository, SynthConfig};
use spack_spec::parse_spec;
use spack_store::{synthesize_buildcache, BuildcacheConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "spec" | "solve" => cmd_spec(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "providers" => cmd_providers(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "criteria" => cmd_criteria(),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "spack-solve — ASP-based dependency solving (SC'22 reproduction)\n\n\
         USAGE:\n  spack-solve spec [--greedy] [--reuse] [--lassen] [--stats] [--explain] [--portfolio K] [--synthetic N] <spec...>\n  \
         spack-solve batch [--reuse] [--lassen] [--stats] [--portfolio K] [--synthetic N] <file>   (one spec per line; - for stdin)\n  \
         spack-solve providers <virtual>\n  spack-solve list [--synthetic N]\n  spack-solve criteria\n"
    );
}

fn repository(synthetic: Option<usize>) -> Repository {
    match synthetic {
        Some(n) => synth_repo(&SynthConfig { packages: n, ..Default::default() }),
        None => builtin_repo(),
    }
}

struct SpecOptions {
    greedy: bool,
    reuse: bool,
    lassen: bool,
    stats: bool,
    explain: bool,
    portfolio: usize,
    synthetic: Option<usize>,
    spec_text: String,
}

fn parse_spec_args(args: &[String]) -> Result<SpecOptions, String> {
    let mut options = SpecOptions {
        greedy: false,
        reuse: false,
        lassen: false,
        stats: false,
        explain: false,
        portfolio: 1,
        synthetic: None,
        spec_text: String::new(),
    };
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--greedy" => options.greedy = true,
            "--reuse" => options.reuse = true,
            "--lassen" => options.lassen = true,
            "--stats" => options.stats = true,
            "--explain" => options.explain = true,
            "--portfolio" => {
                let k =
                    iter.next().ok_or_else(|| "--portfolio requires a worker count".to_string())?;
                options.portfolio = k.parse().map_err(|_| format!("invalid worker count '{k}'"))?;
            }
            "--synthetic" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--synthetic requires a package count".to_string())?;
                options.synthetic =
                    Some(n.parse().map_err(|_| format!("invalid package count '{n}'"))?);
            }
            other => rest.push(other.to_string()),
        }
    }
    if rest.is_empty() {
        return Err("no spec given".to_string());
    }
    options.spec_text = rest.join(" ");
    Ok(options)
}

fn cmd_spec(args: &[String]) -> ExitCode {
    let options = match parse_spec_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("==> Error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let repo = repository(options.synthetic);
    let site = if options.lassen { SiteConfig::lassen() } else { SiteConfig::quartz() };
    let spec = match parse_spec(&options.spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("==> Error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("Input spec");
    println!("--------------------------------");
    println!("{}\n", options.spec_text);

    if options.greedy {
        let greedy = GreedyConcretizer::new(&repo, site);
        return match greedy.concretize(&spec) {
            Ok(result) => {
                println!("Concretized (old greedy concretizer)");
                println!("--------------------------------");
                print!("{}", result.spec);
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("==> Error: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let cache;
    let mut concretizer = Concretizer::new(&repo).with_site(site).with_portfolio(options.portfolio);
    if options.reuse {
        cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        println!("(reuse enabled: {} cached builds)\n", cache.len());
        concretizer = concretizer.with_database(&cache);
    }

    match concretizer.concretize(&[spec]) {
        Ok(result) => {
            println!("Concretized");
            println!("--------------------------------");
            print!("{}", result.spec);
            println!();
            println!(
                "{} packages: {} to build, {} reused",
                result.spec.len(),
                result.build_count(),
                result.reuse_count()
            );
            println!(
                "phases: setup {:.1?}, load {:.1?}, ground {:.1?}, solve {:.1?} (total {:.1?})",
                result.timings.setup,
                result.timings.load,
                result.timings.ground,
                result.timings.solve,
                result.timings.total()
            );
            let nonzero: Vec<String> = result
                .cost
                .iter()
                .filter(|(_, v)| *v != 0)
                .map(|(p, v)| {
                    let (bucket, desc) = describe_priority(*p);
                    format!("    [{bucket}] {desc}: {v}")
                })
                .collect();
            if !nonzero.is_empty() {
                println!("non-zero optimization criteria:");
                for line in nonzero {
                    println!("{line}");
                }
            }
            if options.stats {
                print_stats(&result);
            }
            ExitCode::SUCCESS
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, stats }) => {
            print_unsat_report(&options, &diagnostics, &stats);
            // Exit 2: the request is well-formed but infeasible — distinct from the
            // generic failure (1) used for tool and usage errors.
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("==> Error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The "why not" report for an unsatisfiable request. Without `--explain` only the
/// most severe diagnostic is shown (plus a pointer to the flag); with it, every
/// diagnostic and the implicated root requirements are printed. `--stats` adds the
/// cost of producing the explanation (unsat-core size, deletion-minimization rounds,
/// second-phase solve time).
fn print_unsat_report(
    options: &SpecOptions,
    diagnostics: &[spack_concretizer::Diagnostic],
    stats: &spack_concretizer::DiagnosticsStats,
) {
    eprintln!("==> Error: concretization failed: no valid configuration exists");
    if options.explain {
        eprintln!("\nwhy not");
        eprintln!("--------------------------------");
        for d in diagnostics {
            let tag = match d.severity {
                spack_concretizer::Severity::Error => "error",
                spack_concretizer::Severity::Note => "note ",
            };
            eprintln!("  [{:>3}] {tag} {}: {}", d.priority, d.code, d.message);
        }
        let provenance: Vec<&String> =
            diagnostics.iter().flat_map(|d| d.provenance.iter()).collect();
        if !provenance.is_empty() {
            let mut seen: Vec<&String> = Vec::new();
            eprintln!("\n  implicated requirements (minimized unsat core):");
            for p in provenance {
                if !seen.contains(&p) {
                    eprintln!("    {p}");
                    seen.push(p);
                }
            }
        }
    } else {
        if let Some(first) = diagnostics.first() {
            eprintln!("    {}", first.message);
        }
        if diagnostics.len() > 1 {
            eprintln!(
                "    ({} diagnostics total; run with --explain for the full report)",
                diagnostics.len()
            );
        }
    }
    if options.stats {
        eprintln!("\ndiagnostics statistics");
        eprintln!("--------------------------------");
        eprintln!(
            "  unsat core: {} assumptions, minimized to {} in {} deletion rounds",
            stats.core_size, stats.minimized_core_size, stats.minimization_rounds
        );
        eprintln!("  second phase (core minimization + relaxed solve): {:.1?}", stats.second_phase);
        eprintln!(
            "  phases (both solves combined): setup {:.1?}, load {:.1?}, ground {:.1?}, solve {:.1?}",
            stats.phases.setup, stats.phases.load, stats.phases.ground, stats.phases.solve
        );
        eprintln!("  second-phase grounding: {:.1?}", stats.second_phase_ground);
    }
}

/// Print the engine statistics behind a solve: per-stage wall times, the grounder's
/// `GroundStats`, and the aggregated CDCL `SatStats` — the same counters the
/// benchmark-regression harness records in its JSON report.
fn print_stats(result: &spack_concretizer::Concretization) {
    let s = &result.stats;
    let g = &s.ground;
    println!("\nstatistics");
    println!("--------------------------------");
    println!(
        "  phases:   setup {:>10.1?}  load {:>10.1?}  ground {:>10.1?}  solve {:>10.1?}",
        result.timings.setup, result.timings.load, result.timings.ground, result.timings.solve
    );
    println!(
        "  grounder: {} facts -> {} atoms, {} rules, {} choices, {} minimize",
        s.facts, g.atoms, g.rules, g.choices, g.minimize
    );
    println!(
        "            {} fixpoint rounds (phase1 {:.1?}, phase2 {:.1?})",
        g.rounds, g.phase1, g.phase2
    );
    println!(
        "  sat:      {} vars, {} clauses | {} solver runs, {} models examined, {} loop nogoods",
        s.variables, s.clauses, s.solver_runs, s.models_examined, s.loop_nogoods
    );
    println!(
        "            {} decisions, {} propagations, {} conflicts, {} restarts, {} learned ({} deleted)",
        s.decisions, s.propagations, s.conflicts, s.restarts, s.learned, s.deleted
    );
    println!(
        "            warm clauses {}, transferred {}, winning seed {:#x}",
        s.warm_clauses, s.transferred_clauses, s.winner_seed
    );
}

/// `spack-solve batch <file>`: one request per line, answered on a single multi-shot
/// session (base ground exactly once), each line reporting its own outcome. The exit
/// code is the worst per-line status: 0 when every line concretized, 2 when at least
/// one was unsatisfiable (and nothing worse happened), 1 on any tool error.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut reuse = false;
    let mut lassen = false;
    let mut stats = false;
    let mut portfolio = 1usize;
    let mut synthetic: Option<usize> = None;
    let mut file: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--reuse" => reuse = true,
            "--lassen" => lassen = true,
            "--stats" => stats = true,
            "--portfolio" => {
                let Some(k) = iter.next() else {
                    eprintln!("==> Error: --portfolio requires a worker count");
                    return ExitCode::FAILURE;
                };
                match k.parse() {
                    Ok(k) => portfolio = k,
                    Err(_) => {
                        eprintln!("==> Error: invalid worker count '{k}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--synthetic" => {
                let Some(n) = iter.next() else {
                    eprintln!("==> Error: --synthetic requires a package count");
                    return ExitCode::FAILURE;
                };
                match n.parse() {
                    Ok(n) => synthetic = Some(n),
                    Err(_) => {
                        eprintln!("==> Error: invalid package count '{n}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("==> Error: unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!(
            "usage: spack-solve batch [--reuse] [--lassen] [--stats] [--portfolio K] \
             [--synthetic N] <file>"
        );
        return ExitCode::FAILURE;
    };
    let text = if file == "-" {
        use std::io::Read;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("==> Error: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("==> Error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let lines: Vec<&str> =
        text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
    if lines.is_empty() {
        eprintln!("==> Error: no specs in {file}");
        return ExitCode::FAILURE;
    }

    let repo = repository(synthetic);
    let site = if lassen { SiteConfig::lassen() } else { SiteConfig::quartz() };
    let cache;
    let mut concretizer = Concretizer::new(&repo).with_site(site).with_portfolio(portfolio);
    if reuse {
        cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        concretizer = concretizer.with_database(&cache);
    }
    let session = match concretizer.session() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("==> Error: building the session failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse every line up front; parse failures are per-line tool errors.
    let mut requests: Vec<Vec<spack_spec::Spec>> = Vec::new();
    let mut parse_errors: Vec<Option<String>> = Vec::new();
    for line in &lines {
        match parse_spec(line) {
            Ok(spec) => {
                requests.push(vec![spec]);
                parse_errors.push(None);
            }
            Err(e) => {
                requests.push(Vec::new()); // placeholder; reported, never solved
                parse_errors.push(Some(e.to_string()));
            }
        }
    }
    let solvable: Vec<Vec<spack_spec::Spec>> =
        requests.iter().filter(|r| !r.is_empty()).cloned().collect();
    let started = std::time::Instant::now();
    let mut results = session.concretize_batch(&solvable).into_iter();
    let elapsed = started.elapsed();

    let mut any_unsat = false;
    let mut any_error = false;
    for (line, parse_error) in lines.iter().zip(&parse_errors) {
        if let Some(e) = parse_error {
            any_error = true;
            println!("error  {line}: {e}");
            continue;
        }
        match results.next().expect("one result per parsed line") {
            Ok(result) => println!(
                "ok     {line} -> {} packages ({} reused, {} to build)",
                result.spec.len(),
                result.reuse_count(),
                result.build_count()
            ),
            Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
                any_unsat = true;
                let first = diagnostics.first().map(|d| d.message.clone()).unwrap_or_default();
                println!("UNSAT  {line}: {first}");
            }
            Err(e) => {
                any_error = true;
                println!("error  {line}: {e}");
            }
        }
    }
    let s = session.stats();
    eprintln!(
        "\n{} requests in {elapsed:.2?} ({:.1} specs/sec); base ground once in {:.2?}",
        solvable.len(),
        solvable.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        s.base_setup + s.base_load + s.base_ground
    );
    if stats {
        eprintln!("session statistics");
        eprintln!("--------------------------------");
        eprintln!(
            "  base: {} packages, {} facts, {} installed records, digest {:016x}",
            s.possible_packages, s.base_facts, s.installed, s.base_digest
        );
        eprintln!(
            "  base phases: setup {:.2?}, load {:.2?}, ground {:.2?} ({} atoms, {} frozen instances)",
            s.base_setup, s.base_load, s.base_ground, s.base_atoms, s.frozen_instances
        );
        eprintln!(
            "  base grounds: {} (must be 1), requests served: {}",
            s.base_grounds, s.requests
        );
        eprintln!(
            "  nogood store: {} hits, {} misses, {} clauses transferred",
            s.store_hits, s.store_misses, s.store_transferred
        );
    }
    if any_error {
        ExitCode::FAILURE
    } else if any_unsat {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_providers(args: &[String]) -> ExitCode {
    let Some(virtual_name) = args.first() else {
        eprintln!("usage: spack-solve providers <virtual>");
        return ExitCode::FAILURE;
    };
    let repo = builtin_repo();
    let providers = repo.providers(virtual_name);
    if providers.is_empty() {
        eprintln!("no providers found for '{virtual_name}'");
        return ExitCode::FAILURE;
    }
    println!("providers of {virtual_name}:");
    for p in providers {
        let versions = repo
            .get(p)
            .map(|pkg| {
                pkg.versions.iter().map(|v| v.version.to_string()).collect::<Vec<_>>().join(", ")
            })
            .unwrap_or_default();
        println!("  {p}  ({versions})");
    }
    ExitCode::SUCCESS
}

fn cmd_list(args: &[String]) -> ExitCode {
    let synthetic = args
        .iter()
        .position(|a| a == "--synthetic")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let repo = repository(synthetic);
    println!("{} packages, {} virtuals", repo.len(), repo.virtuals().count());
    for name in repo.names() {
        let pkg = repo.get(name).unwrap();
        println!(
            "  {name:<24} versions: {:<2}  variants: {:<2}  possible deps: {}",
            pkg.versions.len(),
            pkg.variants.len(),
            repo.possible_dependency_count(name)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_criteria() -> ExitCode {
    println!("Spack's optimization criteria (Table II), highest priority first:");
    for c in CRITERIA {
        println!(
            "  {:>2}. {:<42} reuse bucket @{:<3} build bucket @{}",
            c.rank,
            c.description,
            c.reuse_priority(),
            c.build_priority()
        );
    }
    println!("  number of builds sits between the bucket groups at priority 100 (Fig. 5)");
    ExitCode::SUCCESS
}

//! `spack-solve` — a small command-line front end for the ASP-based concretizer.
//!
//! This is the reproduction's analogue of `spack spec` / `spack solve`: it concretizes
//! abstract specs against the built-in curated repository (or a synthetic one) and prints
//! the resulting DAG, the build/reuse partition, the objective vector, and the phase
//! timings the paper instruments.
//!
//! ```text
//! spack-solve spec hdf5@1.10.2 +mpi            # concretize and print the DAG
//! spack-solve spec --greedy hpctoolkit ^mpich  # use the old (incomplete) algorithm
//! spack-solve spec --reuse hdf5                # reuse a synthesized buildcache
//! spack-solve spec --stats hdf5                # show grounder/solver statistics
//! spack-solve spec --explain zlib@9.9         # full "why not" report on UNSAT
//! spack-solve batch requests.txt               # session-mode solve, one spec per line
//! spack-solve providers mpi                    # list providers of a virtual
//! spack-solve list                             # list known packages
//! spack-solve criteria                         # print Table II
//! ```
//!
//! `batch` builds a multi-shot [`spack_concretizer::ConcretizerSession`] — base facts
//! and the logic program are ground exactly once — and answers every line of the file
//! as an incremental request (in parallel), printing a per-line status and a
//! throughput summary. Lines that are empty or start with `#` are skipped (line
//! numbers in parse-error reports still count them). With `--state-dir` the batch is
//! durable: every result is checkpointed atomically, a re-run resumes where the last
//! one stopped, and failed items land in `<state-dir>/dlq.jsonl` with their full
//! diagnostics (see `spack_concretizer::durable`). `--deadline-ms` /
//! `--conflict-limit` bound every solve; a budgeted-out item is retried `--retries`
//! times (default 1) with a diversified seed and a doubled budget before it is
//! dead-lettered.
//!
//! On an unsatisfiable request the solver never answers with a bare "no": the
//! single-grounding diagnosis (unsat core + relaxed error minimization on the same
//! ground program, see `spack_concretizer::diagnose`) always produces specific
//! messages, and `--explain` prints all of them along with the implicated root
//! requirements.
//!
//! Exit codes distinguish *why* a solve did not produce a DAG. `spec`: `1` for tool
//! errors (bad arguments, parse failures, internal solver errors) and `2` for a
//! well-formed but unsatisfiable request. `batch`: `1` for pipeline errors, else the
//! worst per-line class — `2` unsatisfiable, `3` spec parse error, `4` solve budget
//! exhausted, `5` internal error — so scripts can tell "your spec is wrong" from
//! "the tool broke" from "the solve was cut off".

use std::process::ExitCode;

use spack_concretizer::{
    describe_priority, ConcretizeError, Concretizer, GreedyConcretizer, SiteConfig, SolveOptions,
    StateDir, CRITERIA,
};
use spack_repo::{builtin_repo, synth_repo, Repository, SynthConfig};
use spack_spec::parse_spec;
use spack_store::{synthesize_buildcache, BuildcacheConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "spec" | "solve" => cmd_spec(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "providers" => cmd_providers(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "criteria" => cmd_criteria(),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "spack-solve — ASP-based dependency solving (SC'22 reproduction)\n\n\
         USAGE:\n  spack-solve spec [--greedy] [--reuse] [--lassen] [--stats] [--explain] [--portfolio K] [--synthetic N] <spec...>\n  \
         spack-solve batch [--reuse] [--lassen] [--stats] [--json] [--portfolio K] [--synthetic N]\n                    [--state-dir DIR] [--deadline-ms MS] [--conflict-limit N] [--retries N] <file>   (one spec per line; - for stdin)\n  \
         spack-solve providers <virtual>\n  spack-solve list [--synthetic N]\n  spack-solve criteria\n"
    );
}

fn repository(synthetic: Option<usize>) -> Repository {
    match synthetic {
        Some(n) => synth_repo(&SynthConfig { packages: n, ..Default::default() }),
        None => builtin_repo(),
    }
}

struct SpecOptions {
    greedy: bool,
    reuse: bool,
    lassen: bool,
    stats: bool,
    explain: bool,
    portfolio: usize,
    synthetic: Option<usize>,
    spec_text: String,
}

fn parse_spec_args(args: &[String]) -> Result<SpecOptions, String> {
    let mut options = SpecOptions {
        greedy: false,
        reuse: false,
        lassen: false,
        stats: false,
        explain: false,
        portfolio: 1,
        synthetic: None,
        spec_text: String::new(),
    };
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--greedy" => options.greedy = true,
            "--reuse" => options.reuse = true,
            "--lassen" => options.lassen = true,
            "--stats" => options.stats = true,
            "--explain" => options.explain = true,
            "--portfolio" => {
                let k =
                    iter.next().ok_or_else(|| "--portfolio requires a worker count".to_string())?;
                options.portfolio = k.parse().map_err(|_| format!("invalid worker count '{k}'"))?;
            }
            "--synthetic" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--synthetic requires a package count".to_string())?;
                options.synthetic =
                    Some(n.parse().map_err(|_| format!("invalid package count '{n}'"))?);
            }
            other => rest.push(other.to_string()),
        }
    }
    if rest.is_empty() {
        return Err("no spec given".to_string());
    }
    options.spec_text = rest.join(" ");
    Ok(options)
}

fn cmd_spec(args: &[String]) -> ExitCode {
    let options = match parse_spec_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("==> Error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let repo = repository(options.synthetic);
    let site = if options.lassen { SiteConfig::lassen() } else { SiteConfig::quartz() };
    let spec = match parse_spec(&options.spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("==> Error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("Input spec");
    println!("--------------------------------");
    println!("{}\n", options.spec_text);

    if options.greedy {
        let greedy = GreedyConcretizer::new(&repo, site);
        return match greedy.concretize(&spec) {
            Ok(result) => {
                println!("Concretized (old greedy concretizer)");
                println!("--------------------------------");
                print!("{}", result.spec);
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("==> Error: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let cache;
    let mut solve_options = SolveOptions::new().site(site).portfolio(options.portfolio);
    if options.reuse {
        cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        println!("(reuse enabled: {} cached builds)\n", cache.len());
        solve_options = solve_options.database(&cache);
    }
    let concretizer = Concretizer::new(&repo).with_options(solve_options);

    match concretizer.concretize(&[spec]) {
        Ok(result) => {
            println!("Concretized");
            println!("--------------------------------");
            print!("{}", result.spec);
            println!();
            println!(
                "{} packages: {} to build, {} reused",
                result.spec.len(),
                result.build_count(),
                result.reuse_count()
            );
            println!(
                "phases: setup {:.1?}, load {:.1?}, ground {:.1?}, solve {:.1?} (total {:.1?})",
                result.timings.setup,
                result.timings.load,
                result.timings.ground,
                result.timings.solve,
                result.timings.total()
            );
            let nonzero: Vec<String> = result
                .cost
                .iter()
                .filter(|(_, v)| *v != 0)
                .map(|(p, v)| {
                    let (bucket, desc) = describe_priority(*p);
                    format!("    [{bucket}] {desc}: {v}")
                })
                .collect();
            if !nonzero.is_empty() {
                println!("non-zero optimization criteria:");
                for line in nonzero {
                    println!("{line}");
                }
            }
            if options.stats {
                print_stats(&result);
            }
            ExitCode::SUCCESS
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, stats }) => {
            print_unsat_report(&options, &diagnostics, &stats);
            // Exit 2: the request is well-formed but infeasible — distinct from the
            // generic failure (1) used for tool and usage errors.
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("==> Error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The "why not" report for an unsatisfiable request. Without `--explain` only the
/// most severe diagnostic is shown (plus a pointer to the flag); with it, every
/// diagnostic and the implicated root requirements are printed. `--stats` adds the
/// cost of producing the explanation (unsat-core size, deletion-minimization rounds,
/// second-phase solve time).
fn print_unsat_report(
    options: &SpecOptions,
    diagnostics: &[spack_concretizer::Diagnostic],
    stats: &spack_concretizer::DiagnosticsStats,
) {
    eprintln!("==> Error: concretization failed: no valid configuration exists");
    if options.explain {
        eprintln!("\nwhy not");
        eprintln!("--------------------------------");
        for d in diagnostics {
            let tag = match d.severity {
                spack_concretizer::Severity::Error => "error",
                spack_concretizer::Severity::Note => "note ",
            };
            eprintln!("  [{:>3}] {tag} {}: {}", d.priority, d.code, d.message);
        }
        let provenance: Vec<&String> =
            diagnostics.iter().flat_map(|d| d.provenance.iter()).collect();
        if !provenance.is_empty() {
            let mut seen: Vec<&String> = Vec::new();
            eprintln!("\n  implicated requirements (minimized unsat core):");
            for p in provenance {
                if !seen.contains(&p) {
                    eprintln!("    {p}");
                    seen.push(p);
                }
            }
        }
    } else {
        if let Some(first) = diagnostics.first() {
            eprintln!("    {}", first.message);
        }
        if diagnostics.len() > 1 {
            eprintln!(
                "    ({} diagnostics total; run with --explain for the full report)",
                diagnostics.len()
            );
        }
    }
    if options.stats {
        eprintln!("\ndiagnostics statistics");
        eprintln!("--------------------------------");
        eprintln!(
            "  unsat core: {} assumptions, minimized to {} in {} deletion rounds",
            stats.core_size, stats.minimized_core_size, stats.minimization_rounds
        );
        eprintln!("  second phase (core minimization + relaxed solve): {:.1?}", stats.second_phase);
        eprintln!(
            "  phases (both solves combined): setup {:.1?}, load {:.1?}, ground {:.1?}, solve {:.1?}",
            stats.phases.setup, stats.phases.load, stats.phases.ground, stats.phases.solve
        );
        eprintln!("  second-phase grounding: {:.1?}", stats.second_phase_ground);
    }
}

/// Print the engine statistics behind a solve: per-stage wall times, the grounder's
/// `GroundStats`, and the aggregated CDCL `SatStats` — the same counters the
/// benchmark-regression harness records in its JSON report.
fn print_stats(result: &spack_concretizer::Concretization) {
    let s = &result.stats;
    let g = &s.ground;
    println!("\nstatistics");
    println!("--------------------------------");
    println!(
        "  phases:   setup {:>10.1?}  load {:>10.1?}  ground {:>10.1?}  solve {:>10.1?}",
        result.timings.setup, result.timings.load, result.timings.ground, result.timings.solve
    );
    println!(
        "  grounder: {} facts -> {} atoms, {} rules, {} choices, {} minimize",
        s.facts, g.atoms, g.rules, g.choices, g.minimize
    );
    println!(
        "            {} fixpoint rounds (phase1 {:.1?}, phase2 {:.1?})",
        g.rounds, g.phase1, g.phase2
    );
    println!(
        "  sat:      {} vars, {} clauses | {} solver runs, {} models examined, {} loop nogoods",
        s.variables, s.clauses, s.solver_runs, s.models_examined, s.loop_nogoods
    );
    println!(
        "            {} decisions, {} propagations, {} conflicts, {} restarts, {} learned ({} deleted)",
        s.decisions, s.propagations, s.conflicts, s.restarts, s.learned, s.deleted
    );
    println!(
        "            warm clauses {}, transferred {}, winning seed {:#x}",
        s.warm_clauses, s.transferred_clauses, s.winner_seed
    );
}

/// `spack-solve batch <file>`: one request per line, answered on a single multi-shot
/// session (base ground exactly once). The durable runner ([`spack_concretizer::
/// durable`]) parses, solves, retries, and (with `--state-dir`) checkpoints every
/// line; failed items land in the dead-letter queue `<state-dir>/dlq.jsonl`. The
/// exit code is the worst per-line class: 0 all solved, 2 unsatisfiable, 3 spec
/// parse error, 4 solve budget exhausted, 5 internal error — and 1 for pipeline
/// errors (bad arguments, unreadable input, state-dir failures).
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut reuse = false;
    let mut lassen = false;
    let mut stats = false;
    let mut json = false;
    let mut portfolio = 1usize;
    let mut synthetic: Option<usize> = None;
    let mut state_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut conflict_limit: Option<u64> = None;
    let mut retries = 1u32;
    let mut file: Option<String> = None;

    fn flag_value<'i>(
        iter: &mut impl Iterator<Item = &'i String>,
        flag: &str,
        what: &str,
    ) -> Result<&'i String, String> {
        iter.next().ok_or_else(|| format!("{flag} requires {what}"))
    }
    fn parse_value<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
        value.parse().map_err(|_| format!("invalid {what} '{value}'"))
    }

    let mut iter = args.iter();
    let parsed: Result<(), String> = (|| {
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--reuse" => reuse = true,
                "--lassen" => lassen = true,
                "--stats" => stats = true,
                "--json" => json = true,
                "--portfolio" => {
                    let k = flag_value(&mut iter, "--portfolio", "a worker count")?;
                    portfolio = parse_value(k, "worker count")?;
                }
                "--synthetic" => {
                    let n = flag_value(&mut iter, "--synthetic", "a package count")?;
                    synthetic = Some(parse_value(n, "package count")?);
                }
                "--state-dir" => {
                    state_dir =
                        Some(flag_value(&mut iter, "--state-dir", "a directory")?.to_string());
                }
                "--deadline-ms" => {
                    let ms = flag_value(&mut iter, "--deadline-ms", "milliseconds")?;
                    deadline_ms = Some(parse_value(ms, "deadline")?);
                }
                "--conflict-limit" => {
                    let n = flag_value(&mut iter, "--conflict-limit", "a conflict count")?;
                    conflict_limit = Some(parse_value(n, "conflict limit")?);
                }
                "--retries" => {
                    let n = flag_value(&mut iter, "--retries", "a retry count")?;
                    retries = parse_value(n, "retry count")?;
                }
                other if file.is_none() => file = Some(other.to_string()),
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("==> Error: {e}");
        return ExitCode::FAILURE;
    }
    let Some(file) = file else {
        eprintln!(
            "usage: spack-solve batch [--reuse] [--lassen] [--stats] [--json] [--portfolio K] \
             [--synthetic N] [--state-dir DIR] [--deadline-ms MS] [--conflict-limit N] \
             [--retries N] <file>"
        );
        return ExitCode::FAILURE;
    };
    let text = if file == "-" {
        use std::io::Read;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("==> Error: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("==> Error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Keep 1-based line numbers through the comment/blank filtering, so parse
    // errors can report where in the *file* the bad spec sits.
    let items: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim().to_string()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if items.is_empty() {
        eprintln!("==> Error: no specs in {file}");
        return ExitCode::FAILURE;
    }

    let budget = asp::SolveBudget {
        wall_deadline: deadline_ms.map(std::time::Duration::from_millis),
        conflict_limit,
    };
    // The manifest digest covers every option that affects results, so a state dir
    // cannot be resumed under a different configuration (including the output
    // format: checkpointed record outputs are replayed verbatim, so a human-mode
    // state dir cannot be resumed as --json or vice versa). The portfolio size is
    // deliberately excluded: results are byte-identical for any K.
    let options_desc = format!(
        "reuse={reuse} lassen={lassen} synthetic={synthetic:?} \
         deadline_ms={deadline_ms:?} conflict_limit={conflict_limit:?} retries={retries} \
         json={json}"
    );
    let state = match &state_dir {
        Some(dir) => {
            let digest = spack_concretizer::durable::batch_digest(&items, &options_desc);
            match StateDir::open(std::path::Path::new(dir), digest, items.len(), &options_desc) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("==> Error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let repo = repository(synthetic);
    let site = if lassen { SiteConfig::lassen() } else { SiteConfig::quartz() };
    let cache;
    let mut solve_options = SolveOptions::new().site(site).portfolio(portfolio).budget(budget);
    if reuse {
        cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        solve_options = solve_options.database(&cache);
    }
    let session = match Concretizer::new(&repo).with_options(solve_options).session() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("==> Error: building the session failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let started = std::time::Instant::now();
    let outcome = match spack_concretizer::durable::run_batch(
        &session,
        &items,
        retries,
        state.as_ref(),
        json,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("==> Error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    for record in &outcome.records {
        println!("{}", record.output);
    }

    let s = session.stats();
    let c = &outcome.counters;
    eprintln!(
        "\n{} requests in {elapsed:.2?} ({:.1} specs/sec); base ground once in {:.2?}",
        items.len(),
        items.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        s.base_setup + s.base_load + s.base_ground
    );
    if stats {
        eprintln!("batch statistics");
        eprintln!("--------------------------------");
        eprintln!(
            "  items: {} solved, {} unsat, {} parse errors, {} budget-exhausted, {} internal",
            c.solved, c.unsat, c.parse_errors, c.budget, c.internal
        );
        eprintln!(
            "  durability: {} resumed from checkpoints, {} corrupt records re-solved, \
             {} budget retries, {} dead-lettered",
            c.resumed, c.corrupt, c.retries, c.dead_lettered
        );
        eprintln!("session statistics");
        eprintln!("--------------------------------");
        eprintln!(
            "  base: {} packages, {} facts, {} installed records, digest {:016x}",
            s.possible_packages, s.base_facts, s.installed, s.base_digest
        );
        eprintln!(
            "  base phases: setup {:.2?}, load {:.2?}, ground {:.2?} ({} atoms, {} frozen instances)",
            s.base_setup, s.base_load, s.base_ground, s.base_atoms, s.frozen_instances
        );
        eprintln!(
            "  base grounds: {} (must be 1), requests served: {}",
            s.base_grounds, s.requests
        );
        eprintln!(
            "  nogood store: {} hits, {} misses, {} clauses transferred",
            s.store_hits, s.store_misses, s.store_transferred
        );
    }
    match outcome.exit_code() {
        0 => ExitCode::SUCCESS,
        code => ExitCode::from(code),
    }
}

fn cmd_providers(args: &[String]) -> ExitCode {
    let Some(virtual_name) = args.first() else {
        eprintln!("usage: spack-solve providers <virtual>");
        return ExitCode::FAILURE;
    };
    let repo = builtin_repo();
    let providers = repo.providers(virtual_name);
    if providers.is_empty() {
        eprintln!("no providers found for '{virtual_name}'");
        return ExitCode::FAILURE;
    }
    println!("providers of {virtual_name}:");
    for p in providers {
        let versions = repo
            .get(p)
            .map(|pkg| {
                pkg.versions.iter().map(|v| v.version.to_string()).collect::<Vec<_>>().join(", ")
            })
            .unwrap_or_default();
        println!("  {p}  ({versions})");
    }
    ExitCode::SUCCESS
}

fn cmd_list(args: &[String]) -> ExitCode {
    let synthetic = args
        .iter()
        .position(|a| a == "--synthetic")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let repo = repository(synthetic);
    println!("{} packages, {} virtuals", repo.len(), repo.virtuals().count());
    for name in repo.names() {
        let pkg = repo.get(name).unwrap();
        println!(
            "  {name:<24} versions: {:<2}  variants: {:<2}  possible deps: {}",
            pkg.versions.len(),
            pkg.variants.len(),
            repo.possible_dependency_count(name)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_criteria() -> ExitCode {
    println!("Spack's optimization criteria (Table II), highest priority first:");
    for c in CRITERIA {
        println!(
            "  {:>2}. {:<42} reuse bucket @{:<3} build bucket @{}",
            c.rank,
            c.description,
            c.reuse_priority(),
            c.build_priority()
        );
    }
    println!("  number of builds sits between the bucket groups at priority 100 (Fig. 5)");
    ExitCode::SUCCESS
}

//! Model extraction: turn the optimal stable model back into a concrete spec DAG.
//!
//! This is step 4 of the concretization pipeline in Section V of the paper: "Build an
//! optimal concrete DAG from the model". The model's `attr*` atoms are read back into
//! [`ConcreteSpec`] nodes, dependency edges, and the build/reuse partition.

use std::collections::BTreeMap;

use asp::{Model, SolveOutcome, Value};
use spack_spec::{Compiler, ConcreteNode, ConcreteSpec, DepKind, Platform, VariantValue, Version};

use crate::config::SiteConfig;
use crate::ConcretizeError;

/// Unwrap a solve outcome into its model and cost, propagating UNSAT as a
/// [`ConcretizeError`] (with no diagnostics — callers on the concretizer's main path
/// run the two-phase diagnosis instead) rather than aborting. Guards the extraction
/// pipeline against pathological inputs that solve to UNSAT where a model was assumed.
pub fn require_model(outcome: SolveOutcome) -> Result<(Model, Vec<(i64, i64)>), ConcretizeError> {
    match outcome {
        SolveOutcome::Optimal { model, cost } => Ok((model, cost)),
        SolveOutcome::Unsatisfiable => Err(ConcretizeError::Extraction(
            "expected a model to extract, but the program is unsatisfiable".to_string(),
        )),
    }
}

/// The result of extracting a model: the concrete DAG plus the reuse partition.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    /// The concrete installation DAG.
    pub spec: ConcreteSpec,
    /// Packages reused from the installed database, with their hashes.
    pub reused: Vec<(String, String)>,
    /// Packages that must be built from source.
    pub built: Vec<String>,
}

fn arg_str(args: &[Value], i: usize) -> String {
    args.get(i).map(|v| v.as_str()).unwrap_or_default()
}

/// Extract a concrete spec from a stable model.
pub fn extract(model: &Model, roots: &[String]) -> Result<Extraction, ConcretizeError> {
    // Collect node names.
    let mut names: Vec<String> = Vec::new();
    for args in model.with_pred("attr2") {
        if arg_str(args, 0) == "node" {
            let name = arg_str(args, 1);
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names.sort();
    let index: BTreeMap<String, usize> =
        names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();

    // Per-node attributes.
    let mut versions: BTreeMap<String, String> = BTreeMap::new();
    let mut compilers: BTreeMap<String, String> = BTreeMap::new();
    let mut oses: BTreeMap<String, String> = BTreeMap::new();
    let mut platforms: BTreeMap<String, String> = BTreeMap::new();
    let mut targets: BTreeMap<String, String> = BTreeMap::new();
    let mut hashes: BTreeMap<String, String> = BTreeMap::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    for args in model.with_pred("attr3") {
        let attr = arg_str(args, 0);
        let package = arg_str(args, 1);
        let value = arg_str(args, 2);
        match attr.as_str() {
            "version" => {
                versions.insert(package, value);
            }
            "compiler" => {
                compilers.insert(package, value);
            }
            "node_os" => {
                oses.insert(package, value);
            }
            "node_platform" => {
                platforms.insert(package, value);
            }
            "node_target" => {
                targets.insert(package, value);
            }
            "hash" => {
                hashes.insert(package, value);
            }
            "depends_on" => {
                edges.push((package, value));
            }
            _ => {}
        }
    }
    let mut variants: BTreeMap<String, BTreeMap<String, VariantValue>> = BTreeMap::new();
    for args in model.with_pred("attr4") {
        if arg_str(args, 0) == "variant_value" {
            let package = arg_str(args, 1);
            let variant = arg_str(args, 2);
            let value = arg_str(args, 3);
            variants.entry(package).or_default().insert(variant, VariantValue::parse(&value));
        }
    }
    // provider(V, P): record provided virtuals per package.
    let mut provides: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for args in model.with_pred("provider") {
        let virtual_name = arg_str(args, 0);
        let package = arg_str(args, 1);
        provides.entry(package).or_default().push(virtual_name);
    }
    // build(P)
    let built: Vec<String> = model.with_pred("build").map(|args| arg_str(args, 0)).collect();

    // Assemble nodes.
    let mut nodes = Vec::with_capacity(names.len());
    for name in &names {
        let version = versions
            .get(name)
            .cloned()
            .ok_or_else(|| ConcretizeError::Extraction(format!("no version assigned to {name}")))?;
        let compiler_id = compilers.get(name).cloned().ok_or_else(|| {
            ConcretizeError::Extraction(format!("no compiler assigned to {name}"))
        })?;
        let node = ConcreteNode {
            name: name.clone(),
            version: Version::new(&version),
            variants: variants.get(name).cloned().unwrap_or_default(),
            compiler: SiteConfig::parse_compiler_id(&compiler_id),
            os: oses.get(name).cloned().unwrap_or_else(|| "unknown".to_string()),
            platform: platforms
                .get(name)
                .and_then(|p| Platform::parse(p))
                .unwrap_or(Platform::Linux),
            target: targets.get(name).cloned().unwrap_or_else(|| "unknown".to_string()),
            deps: Vec::new(),
            provides: provides.get(name).cloned().unwrap_or_default(),
        };
        nodes.push(node);
    }
    // Edges.
    for (parent, child) in edges {
        if let (Some(&p), Some(&c)) = (index.get(&parent), index.get(&child)) {
            if !nodes[p].deps.iter().any(|&(d, _)| d == c) {
                nodes[p].deps.push((c, DepKind::All));
            }
        }
    }
    // Roots.
    let root_indices: Vec<usize> = roots.iter().filter_map(|r| index.get(r).copied()).collect();

    let spec = ConcreteSpec { nodes, roots: root_indices };
    let reused: Vec<(String, String)> = hashes.into_iter().collect();
    let mut built = built;
    built.sort();
    built.dedup();
    Ok(Extraction { spec, reused, built })
}

/// A human-readable compiler placeholder used when extraction needs a default.
pub fn default_compiler() -> Compiler {
    Compiler::new("gcc", "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::{Control, SolverConfig};

    /// Build a tiny model through the real solver so the extraction path is exercised
    /// end to end on the attr* schema. Uses [`require_model`], so an unexpectedly
    /// unsatisfiable input surfaces as a clean `ConcretizeError` instead of a panic.
    fn tiny_model() -> Result<Model, ConcretizeError> {
        let mut ctl = Control::new(SolverConfig::default());
        for (pred, args) in [
            ("attr2", vec!["node", "hdf5"]),
            ("attr2", vec!["node", "zlib"]),
            ("build", vec!["hdf5"]),
            ("build", vec!["zlib"]),
        ] {
            let vals: Vec<Value> = args.into_iter().map(Value::from).collect();
            ctl.add_fact(pred, &vals);
        }
        for (attr, pkg, val) in [
            ("version", "hdf5", "1.12.1"),
            ("version", "zlib", "1.2.11"),
            ("compiler", "hdf5", "gcc@11.2.0"),
            ("compiler", "zlib", "gcc@11.2.0"),
            ("node_os", "hdf5", "centos8"),
            ("node_os", "zlib", "centos8"),
            ("node_platform", "hdf5", "linux"),
            ("node_platform", "zlib", "linux"),
            ("node_target", "hdf5", "skylake"),
            ("node_target", "zlib", "skylake"),
            ("depends_on", "hdf5", "zlib"),
        ] {
            ctl.add_fact("attr3", &[attr.into(), pkg.into(), val.into()]);
        }
        ctl.add_fact(
            "attr4",
            &["variant_value".into(), "hdf5".into(), "mpi".into(), "false".into()],
        );
        ctl.add_program("ok.").unwrap();
        ctl.ground().unwrap();
        let outcome = ctl.solve().map_err(ConcretizeError::Solver)?;
        let (model, _cost) = require_model(outcome)?;
        Ok(model)
    }

    #[test]
    fn extraction_builds_a_dag() {
        let model = tiny_model().expect("the tiny instance has a model");
        let result = extract(&model, &["hdf5".to_string()]).unwrap();
        assert_eq!(result.spec.len(), 2);
        assert_eq!(result.spec.roots.len(), 1);
        let hdf5 = result.spec.node("hdf5").unwrap();
        assert_eq!(hdf5.version.to_string(), "1.12.1");
        assert_eq!(hdf5.compiler.name, "gcc");
        assert_eq!(hdf5.deps.len(), 1);
        assert_eq!(hdf5.variants.get("mpi"), Some(&VariantValue::Bool(false)));
        assert_eq!(result.built.len(), 2);
        assert!(result.reused.is_empty());
    }

    #[test]
    fn missing_version_is_an_extraction_error() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_fact("attr2", &["node".into(), "zlib".into()]);
        ctl.add_program("ok.").unwrap();
        ctl.ground().unwrap();
        let (model, _) = require_model(ctl.solve().unwrap()).unwrap();
        assert!(extract(&model, &["zlib".to_string()]).is_err());
    }

    #[test]
    fn require_model_propagates_unsat_as_an_error() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("p. :- p.").unwrap();
        ctl.ground().unwrap();
        let err = require_model(ctl.solve().unwrap()).unwrap_err();
        assert!(matches!(err, ConcretizeError::Extraction(_)), "{err}");
    }
}

//! Durable batch concretization: checkpoint/resume, dead-letter queue, retries.
//!
//! `spack-solve batch --state-dir <dir>` must survive a SIGKILL at any instant and
//! bound its worst case. This module is the persistence and policy layer behind that:
//!
//! * **Checkpoint/resume** — a [`StateDir`] holds a `manifest.json` (digest of the
//!   batch input + options, so a state dir cannot be resumed against a different
//!   batch) and one record file per item under `items/`, written *after* each
//!   concretization via atomic temp-file + rename ([`StateDir::store`]). A re-run
//!   loads completed records ([`StateDir::load`]) and re-solves only the missing or
//!   corrupt ones; each record carries the fully rendered per-line output, so a
//!   resumed run replays byte-identical stdout.
//! * **Crash consistency** — every record embeds a checksum over its own rendering;
//!   a truncated or bit-flipped record fails verification and is treated exactly
//!   like a missing one (re-solved, counted in [`BatchCounters::corrupt`]) — never
//!   silently skipped, never double-counted.
//! * **Dead-letter queue** — items that did not produce an optimal DAG (unsat,
//!   parse failure, budget exhaustion, internal error/panic) are routed to
//!   `<state-dir>/dlq.jsonl`, one JSON object per item with its failure class and
//!   full [`crate::Diagnostic`] report, regenerated in input order at
//!   the end of every run so the file is deterministic.
//! * **Retry policy** — a budget-exhausted item is retried up to a configurable
//!   number of times with a diversified solver seed and a doubled budget
//!   ([`asp::SolveBudget::doubled`]) before it is finally dead-lettered.
//!
//! The failure classes map onto the batch exit-code contract (worst class wins):
//! `0` all solved, `1` pipeline error, `2` unsatisfiable, `3` spec parse error,
//! `4` budget exhausted, `5` internal error.

use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use asp::hasher::FxHasher;
use rayon::prelude::*;
use spack_spec::parse_spec;

use crate::server::wire::SolveResponse;
use crate::session::panic_message;
use crate::{Concretization, ConcretizeError, ConcretizerSession, ResultClass};

/// Format version stamped into manifests and records; bumped on layout changes so a
/// state dir from a different format is rejected instead of misparsed.
const FORMAT_VERSION: u64 = 1;

/// Seed-diversification constant for budget retries (the golden-ratio multiplier the
/// solver portfolio uses to derive worker seeds — retries draw from the same family).
const SEED_DIVERSIFIER: u64 = 0x9e37_79b9_7f4a_7c15;

/// How one batch item ended up. Since the worst-class taxonomy moved into the
/// crate root as [`ResultClass`] (one source of truth shared with the server's
/// response `status` field and [`ConcretizeError::class`]), this is an alias kept
/// for API continuity — `ItemClass::exit_code`, `ItemClass::as_str`, and the
/// variants resolve through it unchanged.
pub type ItemClass = ResultClass;

/// The durable result of one batch item: everything needed to replay its output and
/// DLQ entry on resume without re-solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemRecord {
    /// Position in the filtered batch input (record files are keyed by this).
    pub index: usize,
    /// 1-based line number in the original input file (comments and blank lines
    /// count, so the number is actionable in an editor).
    pub lineno: usize,
    /// The spec text exactly as read from the input line.
    pub spec: String,
    /// Failure class (or [`ItemClass::Ok`]).
    pub class: ItemClass,
    /// Budget retries consumed by this item.
    pub retries: u32,
    /// The fully rendered per-line stdout output; stored so a resumed run's stdout
    /// is byte-identical to an uninterrupted run's.
    pub output: String,
    /// The rendered `dlq.jsonl` entry for this item, when dead-lettered.
    pub dlq: Option<String>,
}

/// Aggregate counters of one batch run, reported by `spack-solve batch --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Items that concretized to an optimal DAG.
    pub solved: u64,
    /// Items that were unsatisfiable.
    pub unsat: u64,
    /// Items whose spec text did not parse.
    pub parse_errors: u64,
    /// Items whose solve budget ran out (after retries).
    pub budget: u64,
    /// Items that hit an internal error or an isolated panic.
    pub internal: u64,
    /// Budget retries performed across all items.
    pub retries: u64,
    /// Items routed to the dead-letter queue (every non-`Ok` item).
    pub dead_lettered: u64,
    /// Items replayed from checkpoint records instead of re-solved.
    pub resumed: u64,
    /// Checkpoint records that failed verification and were re-solved.
    pub corrupt: u64,
}

/// The outcome of [`run_batch`]: per-item records in input order plus counters.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One record per input item, in input order.
    pub records: Vec<ItemRecord>,
    /// Aggregate counters (resume/retry/DLQ accounting included).
    pub counters: BatchCounters,
}

impl BatchOutcome {
    /// The batch exit code: `0` when every item solved, otherwise the worst
    /// per-item class code (`2` unsat < `3` parse < `4` budget < `5` internal).
    pub fn exit_code(&self) -> u8 {
        self.records.iter().map(|r| r.class.exit_code()).max().unwrap_or(0)
    }
}

/// What loading a checkpoint record produced.
#[derive(Debug)]
pub enum Loaded {
    /// No record on disk: the item has not completed yet.
    Missing,
    /// A record exists but failed parsing or checksum verification (e.g. truncated
    /// by a crash that beat the rename, or bit-flipped): treated as missing.
    Corrupt,
    /// A verified record, ready to replay.
    Ready(ItemRecord),
}

/// A batch checkpoint directory: `manifest.json`, per-item records under `items/`,
/// and the dead-letter queue `dlq.jsonl`. All writes are atomic (temp + rename), so
/// a SIGKILL at any instant leaves every file either absent, whole, or detectably
/// truncated (the temp file — ignored on load).
#[derive(Debug)]
pub struct StateDir {
    root: PathBuf,
    /// Test hook: abort the process after this many records have been stored
    /// (`SPACK_SOLVE_BATCH_KILL_AFTER`), simulating a SIGKILL mid-batch for the
    /// kill-and-resume harness.
    kill_after: Option<u64>,
    stored: AtomicU64,
}

impl StateDir {
    /// Open (or create) a state directory for a batch identified by `digest` — a
    /// hash of the batch's input lines and result-affecting options. An existing
    /// manifest with a different digest is a hard error: resuming a state dir
    /// against a different batch would silently mix results.
    pub fn open(root: &Path, digest: u64, items: usize, options: &str) -> Result<Self, String> {
        std::fs::create_dir_all(root.join("items"))
            .map_err(|e| format!("cannot create state dir {}: {e}", root.display()))?;
        let manifest = format!(
            "{{\"v\": {FORMAT_VERSION}, \"digest\": \"{digest:016x}\", \"items\": {items}, \
             \"options\": \"{}\"}}\n",
            json_escape(options)
        );
        let path = root.join("manifest.json");
        match std::fs::read_to_string(&path) {
            Ok(existing) => {
                if existing != manifest {
                    return Err(format!(
                        "state dir {} belongs to a different batch (manifest mismatch); \
                         use a fresh --state-dir or delete it",
                        root.display()
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                atomic_write(&path, &manifest)
                    .map_err(|e| format!("cannot write manifest: {e}"))?;
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
        let kill_after =
            std::env::var("SPACK_SOLVE_BATCH_KILL_AFTER").ok().and_then(|v| v.parse().ok());
        Ok(StateDir { root: root.to_path_buf(), kill_after, stored: AtomicU64::new(0) })
    }

    fn record_path(&self, index: usize) -> PathBuf {
        self.root.join("items").join(format!("{index}.json"))
    }

    /// Path of the dead-letter queue file.
    pub fn dlq_path(&self) -> PathBuf {
        self.root.join("dlq.jsonl")
    }

    /// Load the checkpoint record of item `index`, verifying its checksum.
    pub fn load(&self, index: usize) -> Loaded {
        match std::fs::read_to_string(self.record_path(index)) {
            Ok(text) => match parse_record(&text) {
                Some(record) if record.index == index => Loaded::Ready(record),
                _ => Loaded::Corrupt,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => Loaded::Missing,
            Err(_) => Loaded::Corrupt,
        }
    }

    /// Persist one item record atomically, then fire the kill-after test hook if
    /// armed (aborting the process the way a SIGKILL would, *after* the rename —
    /// the record itself is durable, everything after it is lost).
    pub fn store(&self, record: &ItemRecord) -> io::Result<()> {
        atomic_write(&self.record_path(record.index), &render_record(record))?;
        let stored = self.stored.fetch_add(1, Ordering::SeqCst) + 1;
        if self.kill_after.is_some_and(|n| stored >= n) {
            std::process::abort();
        }
        Ok(())
    }

    /// Regenerate `dlq.jsonl` from the completed records, in input order (the file
    /// is deterministic: resumed and uninterrupted runs produce identical bytes).
    pub fn write_dlq(&self, records: &[ItemRecord]) -> io::Result<()> {
        let mut text = String::new();
        for record in records {
            if let Some(entry) = &record.dlq {
                text.push_str(entry);
                text.push('\n');
            }
        }
        atomic_write(&self.dlq_path(), &text)
    }
}

/// Write `contents` to `path` atomically: write a sibling temp file, flush it, then
/// rename over the destination. A crash mid-write leaves only the temp file; the
/// destination is never observed half-written.
fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Run a batch of `(lineno, spec-text)` items on a session: resume from `state`
/// when given, solve what is missing (in parallel), checkpoint each result, retry
/// budget exhaustions per `retries`, and regenerate the DLQ. With `json` the
/// per-line output is the server's [`SolveResponse`] wire rendering (id = item
/// index) instead of the human format — byte-identical to what `spack-solved`
/// answers for the same spec and options. `Err` is a pipeline error (state-dir
/// I/O) — distinct from any per-item failure.
pub fn run_batch(
    session: &ConcretizerSession<'_>,
    items: &[(usize, String)],
    retries: u32,
    state: Option<&StateDir>,
    json: bool,
) -> Result<BatchOutcome, String> {
    let indices: Vec<usize> = (0..items.len()).collect();
    let results: Vec<Result<(ItemRecord, bool, bool), String>> = indices
        .par_iter()
        .map(|&index| {
            let (lineno, text) = &items[index];
            let mut corrupt = false;
            if let Some(state) = state {
                match state.load(index) {
                    Loaded::Ready(record) => return Ok((record, true, false)),
                    Loaded::Corrupt => corrupt = true,
                    Loaded::Missing => {}
                }
            }
            let record = solve_item(session, index, *lineno, text, retries, json);
            if let Some(state) = state {
                state.store(&record).map_err(|e| format!("cannot checkpoint item {index}: {e}"))?;
            }
            Ok((record, false, corrupt))
        })
        .collect();

    let mut records = Vec::with_capacity(results.len());
    let mut counters = BatchCounters::default();
    for result in results {
        let (record, resumed, corrupt) = result?;
        match record.class {
            ItemClass::Ok => counters.solved += 1,
            ItemClass::Unsat => counters.unsat += 1,
            ItemClass::Parse => counters.parse_errors += 1,
            ItemClass::Budget => counters.budget += 1,
            ItemClass::Internal => counters.internal += 1,
        }
        counters.retries += u64::from(record.retries);
        counters.dead_lettered += u64::from(record.dlq.is_some());
        counters.resumed += u64::from(resumed);
        counters.corrupt += u64::from(corrupt);
        records.push(record);
    }
    if let Some(state) = state {
        state.write_dlq(&records).map_err(|e| format!("cannot write dlq.jsonl: {e}"))?;
    }
    Ok(BatchOutcome { records, counters })
}

/// Concretize `roots` on the session with panic isolation and the batch retry
/// policy: a budget-exhausted solve is retried up to `retries` times, each
/// attempt with a diversified solver seed (the same golden-ratio family the
/// portfolio draws worker seeds from) and a doubled budget
/// ([`asp::SolveBudget::doubled`] per attempt). `tune` is applied to every
/// attempt's solver configuration *before* the retry diversification — the
/// server threads per-request wire options through it; the batch runner passes
/// a no-op. Returns the final result and the retries consumed.
pub fn solve_with_retries(
    session: &ConcretizerSession<'_>,
    roots: &[spack_spec::Spec],
    tune: &dyn Fn(&mut asp::SolverConfig),
    retries: u32,
) -> (Result<Concretization, ConcretizeError>, u32) {
    let mut attempt: u32 = 0;
    loop {
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.concretize_tuned(roots, |cfg| {
                tune(cfg);
                if attempt > 0 {
                    cfg.seed ^= u64::from(attempt).wrapping_mul(SEED_DIVERSIFIER);
                    if let Some(budget) = cfg.budget {
                        let mut escalated = budget;
                        for _ in 0..attempt {
                            escalated = escalated.doubled();
                        }
                        cfg.budget = Some(escalated);
                    }
                }
            })
        }))
        .unwrap_or_else(|payload| Err(ConcretizeError::Internal(panic_message(payload))));
        match solved {
            Err(ConcretizeError::Budget { .. }) if attempt < retries => attempt += 1,
            other => return (other, attempt),
        }
    }
}

/// Solve one item end to end: parse, concretize (panic-isolated, budget retries
/// via [`solve_with_retries`]), and render the per-line output (human or wire
/// JSON) and DLQ entry. Output and DLQ share one [`SolveResponse`] value — the
/// DLQ entry is the same rendering with the input `lineno` added.
fn solve_item(
    session: &ConcretizerSession<'_>,
    index: usize,
    lineno: usize,
    text: &str,
    retries: u32,
    json: bool,
) -> ItemRecord {
    let id = index.to_string();
    let (response, human) = match parse_spec(text) {
        Err(e) => {
            // Satellite bugfix (PR 7): parse failures report the input line number
            // and do not stop the batch — and they are a distinct class from unsat
            // and internal errors in both the per-line output and the exit code.
            let response = SolveResponse::failure(&id, text, ResultClass::Parse, &e.to_string());
            (response, format!("parse  {text}: {e} (line {lineno})"))
        }
        Ok(spec) => {
            let (result, attempt) =
                solve_with_retries(session, std::slice::from_ref(&spec), &|_| {}, retries);
            let response = SolveResponse::from_result(&id, text, &result, attempt);
            let human = match &result {
                Ok(c) => format!(
                    "ok     {text} -> {} packages ({} reused, {} to build)",
                    c.spec.len(),
                    c.reuse_count(),
                    c.build_count()
                ),
                Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
                    let first = diagnostics.first().map(|d| d.message.clone()).unwrap_or_default();
                    format!("UNSAT  {text}: {first}")
                }
                Err(ConcretizeError::Budget { partial_best, .. }) => match partial_best {
                    Some(c) => format!(
                        "budget {text}: non-optimal model proven ({} packages) before the budget ran out",
                        c.spec.len()
                    ),
                    None => format!("budget {text}: budget exhausted before any model was found"),
                },
                Err(e) if e.class() == ResultClass::Parse => format!("parse  {text}: {e}"),
                Err(e) => format!("error  {text}: {e}"),
            };
            (response, human)
        }
    };
    let class = response.status;
    let retries_used = response.retries;
    let output = if json { response.render() } else { human };
    let dlq = (class != ItemClass::Ok).then(|| {
        let mut entry = response.clone();
        entry.lineno = Some(lineno);
        entry.render()
    });
    ItemRecord { index, lineno, spec: text.to_string(), class, retries: retries_used, output, dlq }
}

/// Digest of a batch's identity: its `(lineno, spec)` items plus the
/// result-affecting options descriptor. Used as the manifest key that prevents a
/// state dir from being resumed against a different batch.
pub fn batch_digest(items: &[(usize, String)], options: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(items.len());
    for (lineno, text) in items {
        h.write_usize(*lineno);
        h.write(text.as_bytes());
        h.write_u8(0xff);
    }
    h.write(options.as_bytes());
    h.finish()
}

// ---- hand-rolled JSON (the workspace deliberately has no serde dependency) --------

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`]. Returns `None` on a malformed escape.
pub(crate) fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extract `"key": "value"` from a single-line JSON object rendering, honoring
/// escapes (the value ends at the first unescaped quote).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    json_unescape(&rest[..end?])
}

/// Extract `"key": <unsigned integer>` from a single-line JSON object rendering.
fn json_uint_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render a record as a single JSON line ending in a checksum over everything
/// before it, so truncation and corruption are detectable on load.
fn render_record(record: &ItemRecord) -> String {
    let dlq = match &record.dlq {
        Some(entry) => format!("\"{}\"", json_escape(entry)),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"v\": {FORMAT_VERSION}, \"index\": {}, \"lineno\": {}, \"spec\": \"{}\", \
         \"class\": \"{}\", \"retries\": {}, \"output\": \"{}\", \"dlq\": {dlq}",
        record.index,
        record.lineno,
        json_escape(&record.spec),
        record.class.as_str(),
        record.retries,
        json_escape(&record.output),
    );
    let mut h = FxHasher::default();
    h.write(body.as_bytes());
    format!("{body}, \"checksum\": \"{:016x}\"}}\n", h.finish())
}

/// Parse and verify a record rendered by [`render_record`]. `None` means corrupt
/// (truncated, bit-flipped, or from an incompatible format version).
fn parse_record(text: &str) -> Option<ItemRecord> {
    let line = text.strip_suffix('\n')?;
    let (body, tail) = line.rsplit_once(", \"checksum\": \"")?;
    let checksum = tail.strip_suffix("\"}")?;
    let mut h = FxHasher::default();
    h.write(body.as_bytes());
    if format!("{:016x}", h.finish()) != checksum {
        return None;
    }
    if json_uint_field(body, "v")? != FORMAT_VERSION {
        return None;
    }
    let dlq =
        if body.ends_with("\"dlq\": null") { None } else { Some(json_str_field(body, "dlq")?) };
    Some(ItemRecord {
        index: json_uint_field(body, "index")? as usize,
        lineno: json_uint_field(body, "lineno")? as usize,
        spec: json_str_field(body, "spec")?,
        class: ItemClass::from_wire(&json_str_field(body, "class")?)?,
        retries: json_uint_field(body, "retries")? as u32,
        output: json_str_field(body, "output")?,
        dlq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ItemRecord {
        let mut entry = SolveResponse::failure(
            "3",
            "zlib@9.9",
            ItemClass::Unsat,
            "no valid configuration exists",
        );
        entry.retries = 2;
        entry.lineno = Some(7);
        entry.diagnostics = vec![crate::diagnose::structural_diagnostic("zlib@9.9")];
        ItemRecord {
            index: 3,
            lineno: 7,
            spec: "zlib@\"weird\\spec\"\ttext".to_string(),
            class: ItemClass::Unsat,
            retries: 2,
            output: "UNSAT  zlib@9.9: no known version".to_string(),
            dlq: Some(entry.render()),
        }
    }

    #[test]
    fn record_roundtrips_through_render_and_parse() {
        let record = sample_record();
        let rendered = render_record(&record);
        assert_eq!(parse_record(&rendered).expect("roundtrip"), record);
        // No-DLQ records roundtrip too.
        let ok = ItemRecord { dlq: None, class: ItemClass::Ok, ..record };
        assert_eq!(parse_record(&render_record(&ok)).expect("roundtrip"), ok);
    }

    #[test]
    fn truncated_and_corrupted_records_are_rejected() {
        let rendered = render_record(&sample_record());
        // Any truncation is detected (missing newline, cut checksum, cut body).
        for cut in [1, rendered.len() / 2, rendered.len() - 1] {
            assert!(parse_record(&rendered[..cut]).is_none(), "cut at {cut} must be corrupt");
        }
        // A single flipped character fails the checksum.
        let flipped = rendered.replacen("zlib", "zlob", 1);
        assert!(parse_record(&flipped).is_none(), "bit flip must be corrupt");
    }

    #[test]
    fn json_escaping_roundtrips() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "tab\there\nnewline", "\u{1}ctrl"] {
            assert_eq!(json_unescape(&json_escape(s)).as_deref(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn batch_digest_distinguishes_inputs_and_options() {
        let items = vec![(1usize, "zlib".to_string()), (2, "hdf5".to_string())];
        let base = batch_digest(&items, "opts");
        assert_eq!(base, batch_digest(&items, "opts"));
        assert_ne!(base, batch_digest(&items, "other-opts"));
        let mut renumbered = items.clone();
        renumbered[1].0 = 3;
        assert_ne!(base, batch_digest(&renumbered, "opts"));
        assert_ne!(base, batch_digest(&items[..1], "opts"));
    }

    #[test]
    fn exit_codes_follow_the_worst_class() {
        let mk = |class| ItemRecord {
            index: 0,
            lineno: 1,
            spec: "s".into(),
            class,
            retries: 0,
            output: String::new(),
            dlq: None,
        };
        let outcome = |classes: &[ItemClass]| BatchOutcome {
            records: classes.iter().map(|&c| mk(c)).collect(),
            counters: BatchCounters::default(),
        };
        assert_eq!(outcome(&[ItemClass::Ok, ItemClass::Ok]).exit_code(), 0);
        assert_eq!(outcome(&[ItemClass::Ok, ItemClass::Unsat]).exit_code(), 2);
        assert_eq!(outcome(&[ItemClass::Unsat, ItemClass::Parse]).exit_code(), 3);
        assert_eq!(outcome(&[ItemClass::Parse, ItemClass::Budget]).exit_code(), 4);
        assert_eq!(outcome(&[ItemClass::Budget, ItemClass::Internal]).exit_code(), 5);
    }

    #[test]
    fn state_dir_rejects_a_different_batch() {
        let dir = std::env::temp_dir().join(format!("spack-durable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = StateDir::open(&dir, 0xabcd, 2, "opts").expect("create");
        drop(state);
        assert!(StateDir::open(&dir, 0xabcd, 2, "opts").is_ok(), "same batch resumes");
        let err = StateDir::open(&dir, 0xbeef, 2, "opts").expect_err("different digest");
        assert!(err.contains("different batch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_load_roundtrip_and_corruption_detection_on_disk() {
        let dir = std::env::temp_dir().join(format!("spack-durable-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = StateDir::open(&dir, 1, 4, "opts").expect("create");
        let record = sample_record();
        state.store(&record).expect("store");
        match state.load(record.index) {
            Loaded::Ready(loaded) => assert_eq!(loaded, record),
            other => panic!("expected Ready, got {other:?}"),
        }
        assert!(matches!(state.load(99), Loaded::Missing));
        // Truncate the record on disk mid-file: load must flag it corrupt.
        let path = dir.join("items").join(format!("{}.json", record.index));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(state.load(record.index), Loaded::Corrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The original (greedy, fixed-point) concretizer — the baseline the paper replaces.
//!
//! Section III-C of the paper describes the old algorithm's two defects: it is not
//! *complete* (it makes local decisions, cannot backtrack, and therefore misses solutions
//! that exist) and not *optimal*. This module reproduces that algorithm and its
//! characteristic failure modes:
//!
//! * variant values are fixed from defaults (or the user's spec) *before* dependencies
//!   are descended into, so `hpctoolkit ^mpich` fails with "Package hpctoolkit does not
//!   depend on mpich" (Section V-B1),
//! * version choices are never revisited, so a later conflict aborts the solve instead of
//!   backtracking (Section III-C2),
//! * `conflicts` directives are only checked *after* the solution is computed
//!   (Section V-B2).
//!
//! It is used as the comparison baseline for Fig. 7h.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use spack_repo::Repository;
use spack_spec::{Compiler, ConcreteNode, ConcreteSpec, DepKind, Spec, VariantValue, Version};

use crate::config::SiteConfig;

/// Errors produced by the greedy concretizer (all of them are "give up" errors — the
/// algorithm never backtracks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreedyError {
    /// The root (or a dependency) names a package that does not exist.
    UnknownPackage(String),
    /// A `^dep` constraint was given for a package that never became a dependency —
    /// the `hpctoolkit ^mpich` failure of Section V-B1.
    DoesNotDependOn {
        /// The root package.
        package: String,
        /// The constrained dependency that never appeared.
        dependency: String,
    },
    /// No declared version satisfies the accumulated constraints.
    NoSatisfyingVersion {
        /// The package whose version could not be chosen.
        package: String,
        /// The offending constraint.
        constraint: String,
    },
    /// Constraints acquired after a decision contradict the decision (no backtracking).
    ConflictingDecision {
        /// The package whose decided value is contradicted.
        package: String,
        /// Description of the contradiction.
        reason: String,
    },
    /// A `conflicts()` directive matched the final solution.
    ConflictTriggered {
        /// The package declaring the conflict.
        package: String,
        /// The conflicting constraint, rendered as a spec.
        conflict: String,
    },
}

impl fmt::Display for GreedyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GreedyError::UnknownPackage(p) => write!(f, "unknown package {p}"),
            GreedyError::DoesNotDependOn { package, dependency } => {
                write!(f, "Package {package} does not depend on {dependency}")
            }
            GreedyError::NoSatisfyingVersion { package, constraint } => {
                write!(f, "no version of {package} satisfies {constraint}")
            }
            GreedyError::ConflictingDecision { package, reason } => {
                write!(f, "cannot satisfy constraint on {package}: {reason}")
            }
            GreedyError::ConflictTriggered { package, conflict } => {
                write!(f, "conflict triggered in {package}: {conflict}")
            }
        }
    }
}

impl std::error::Error for GreedyError {}

/// The result of a greedy concretization.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// The concrete DAG.
    pub spec: ConcreteSpec,
    /// Wall-clock time spent.
    pub duration: Duration,
}

/// The greedy concretizer.
pub struct GreedyConcretizer<'a> {
    repo: &'a Repository,
    site: SiteConfig,
}

struct NodeState {
    constraints: Spec,
    node: Option<ConcreteNode>,
    deps: Vec<String>,
}

impl<'a> GreedyConcretizer<'a> {
    /// Create a greedy concretizer over a repository with a site configuration.
    pub fn new(repo: &'a Repository, site: SiteConfig) -> Self {
        GreedyConcretizer { repo, site }
    }

    /// Concretize a single abstract root spec.
    pub fn concretize(&self, root: &Spec) -> Result<GreedyResult, GreedyError> {
        let start = Instant::now();
        let root_name = root
            .name
            .clone()
            .ok_or_else(|| GreedyError::UnknownPackage("<anonymous>".to_string()))?;
        if self.repo.get(&root_name).is_none() {
            return Err(GreedyError::UnknownPackage(root_name));
        }

        // ^dep constraints from the command line, indexed by package name.
        let mut cli_constraints: BTreeMap<String, Spec> = BTreeMap::new();
        for dep in &root.dependencies {
            if let Some(name) = &dep.name {
                cli_constraints.entry(name.clone()).or_insert_with(Spec::anonymous).constrain(dep);
            }
        }

        let mut states: BTreeMap<String, NodeState> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        let mut root_constraints = root.clone();
        root_constraints.dependencies.clear();
        states.insert(
            root_name.clone(),
            NodeState { constraints: root_constraints, node: None, deps: Vec::new() },
        );
        queue.push_back(root_name.clone());

        // Greedy fixed point: decide each package completely the first time it is seen.
        while let Some(name) = queue.pop_front() {
            if states.get(&name).map(|s| s.node.is_some()).unwrap_or(false) {
                continue;
            }
            let constraints =
                states.get(&name).map(|s| s.constraints.clone()).unwrap_or_else(Spec::anonymous);
            let (node, deps) = self.decide(&name, &constraints, &cli_constraints)?;
            for (dep_name, dep_constraint) in &deps {
                match states.get_mut(dep_name) {
                    Some(state) => {
                        // The dependency may already be decided: check instead of
                        // backtracking.
                        if let Some(existing) = &state.node {
                            check_decided(existing, dep_constraint)?;
                        } else {
                            state.constraints.constrain(dep_constraint);
                        }
                    }
                    None => {
                        states.insert(
                            dep_name.clone(),
                            NodeState {
                                constraints: dep_constraint.clone(),
                                node: None,
                                deps: Vec::new(),
                            },
                        );
                    }
                }
                queue.push_back(dep_name.clone());
            }
            let entry = states.get_mut(&name).expect("state exists");
            entry.node = Some(node);
            entry.deps = deps.into_iter().map(|(n, _)| n).collect();
        }

        // The old concretizer's post-hoc checks: every command-line ^dep must actually be
        // in the DAG, and no conflicts() directive may match.
        for dep_name in cli_constraints.keys() {
            if !states.contains_key(dep_name)
                && !states.values().any(|s| {
                    s.node.as_ref().map(|n| n.provides.contains(dep_name)).unwrap_or(false)
                })
            {
                return Err(GreedyError::DoesNotDependOn {
                    package: root_name,
                    dependency: dep_name.clone(),
                });
            }
        }
        let spec = self.assemble(&root_name, &states);
        self.validate_conflicts(&spec)?;

        Ok(GreedyResult { spec, duration: start.elapsed() })
    }

    /// Decide every parameter of a package immediately (the greedy step).
    fn decide(
        &self,
        name: &str,
        constraints: &Spec,
        cli: &BTreeMap<String, Spec>,
    ) -> Result<(ConcreteNode, Vec<(String, Spec)>), GreedyError> {
        let pkg =
            self.repo.get(name).ok_or_else(|| GreedyError::UnknownPackage(name.to_string()))?;

        // Version: the newest non-deprecated declared version satisfying the constraints
        // accumulated *so far*.
        let mut declared: Vec<_> = pkg.versions.clone();
        declared.sort_by(|a, b| b.version.cmp(&a.version));
        let version = declared
            .iter()
            .filter(|d| !d.deprecated)
            .chain(declared.iter().filter(|d| d.deprecated))
            .find(|d| constraints.versions.satisfies(&d.version))
            .map(|d| d.version.clone())
            .ok_or_else(|| GreedyError::NoSatisfyingVersion {
                package: name.to_string(),
                constraint: constraints.versions.to_string(),
            })?;

        // Variants: defaults, overridden by constraints. Decided *now*, before looking at
        // dependencies — this is the incompleteness the paper discusses.
        let mut variants: BTreeMap<String, VariantValue> = BTreeMap::new();
        for v in &pkg.variants {
            variants.insert(v.name.clone(), v.default.clone());
        }
        for (k, v) in &constraints.variants {
            variants.insert(k.clone(), v.clone());
        }

        // Compiler, target, OS, platform.
        let compiler = match &constraints.compiler {
            Some(cs) => self
                .site
                .compilers
                .iter()
                .find(|c| cs.satisfied_by(&c.name, &c.version))
                .cloned()
                .ok_or_else(|| GreedyError::ConflictingDecision {
                    package: name.to_string(),
                    reason: format!("no available compiler satisfies {cs}"),
                })?,
            None => self.site.default_compiler().clone(),
        };
        let target = match &constraints.target {
            Some(t) => t.clone(),
            None => self
                .site
                .best_target_for(&compiler)
                .unwrap_or_else(|| self.site.target_family.clone()),
        };
        let os =
            constraints.os.clone().unwrap_or_else(|| self.site.default_os().name().to_string());
        let platform = constraints.platform.unwrap_or(self.site.platform);

        let provisional = ConcreteNode {
            name: name.to_string(),
            version: version.clone(),
            variants: variants.clone(),
            compiler: compiler.clone(),
            os,
            platform,
            target,
            deps: Vec::new(),
            provides: pkg
                .provides
                .iter()
                .filter(|p| spec_matches_node_basics(&p.when, &version, &variants, &compiler))
                .map(|p| p.virtual_name.clone())
                .collect(),
        };

        // Dependencies whose `when` condition matches the *already decided* node.
        let mut deps: Vec<(String, Spec)> = Vec::new();
        for dep in &pkg.dependencies {
            if !spec_matches_node_basics(&dep.when, &version, &variants, &compiler) {
                continue;
            }
            let dep_name = dep.spec.name.clone().expect("named dependency");
            let mut dep_constraint = dep.spec.clone();
            // Resolve virtuals greedily: a command-line ^provider wins, otherwise the
            // first registered provider.
            let resolved = if self.repo.is_virtual(&dep_name) {
                let from_cli = cli
                    .keys()
                    .find(|candidate| self.repo.providers(&dep_name).contains(candidate))
                    .cloned();
                let provider = from_cli
                    .or_else(|| self.repo.providers(&dep_name).first().cloned())
                    .ok_or_else(|| GreedyError::UnknownPackage(dep_name.clone()))?;
                dep_constraint.name = Some(provider.clone());
                provider
            } else {
                dep_name.clone()
            };
            // Merge in command-line constraints for this package.
            if let Some(extra) = cli.get(&resolved) {
                dep_constraint.constrain(extra);
            }
            deps.push((resolved, dep_constraint));
        }
        Ok((provisional, deps))
    }

    fn assemble(&self, root: &str, states: &BTreeMap<String, NodeState>) -> ConcreteSpec {
        let names: Vec<&String> = states.keys().collect();
        let index: BTreeMap<&str, usize> =
            names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
        let mut nodes: Vec<ConcreteNode> = Vec::new();
        for name in &names {
            let state = &states[name.as_str()];
            let mut node = state.node.clone().expect("decided");
            for dep in &state.deps {
                if let Some(&i) = index.get(dep.as_str()) {
                    node.deps.push((i, DepKind::All));
                }
            }
            nodes.push(node);
        }
        let roots = index.get(root).map(|&i| vec![i]).unwrap_or_default();
        ConcreteSpec { nodes, roots }
    }

    /// Post-hoc conflict validation (Section V-B2: the old concretizer only used
    /// conflicts to validate an already-computed solution).
    fn validate_conflicts(&self, spec: &ConcreteSpec) -> Result<(), GreedyError> {
        for (i, node) in spec.nodes.iter().enumerate() {
            let pkg = match self.repo.get(&node.name) {
                Some(p) => p,
                None => continue,
            };
            for conflict in &pkg.conflicts {
                let when_matches = conflict.when.is_empty()
                    || spec.node_satisfies(i, &anonymous_on(&conflict.when));
                // The node's own constraints are matched against the node; `^dep` pieces
                // of the conflict are matched against the whole DAG (the same semantics
                // the ASP encoding uses for conflict requirements).
                let mut own = conflict.spec.clone();
                let dep_pieces = std::mem::take(&mut own.dependencies);
                let mut conflict_matches = spec.node_satisfies(i, &anonymous_on(&own));
                for piece in &dep_pieces {
                    conflict_matches = conflict_matches
                        && (0..spec.nodes.len()).any(|j| spec.node_satisfies(j, piece));
                }
                if when_matches && conflict_matches {
                    return Err(GreedyError::ConflictTriggered {
                        package: node.name.clone(),
                        conflict: conflict.spec.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Check a newly acquired constraint against an already-decided node. The greedy
/// algorithm cannot revisit decisions, so any mismatch is a hard error.
fn check_decided(node: &ConcreteNode, constraint: &Spec) -> Result<(), GreedyError> {
    if !constraint.versions.is_any() && !constraint.versions.satisfies(&node.version) {
        return Err(GreedyError::ConflictingDecision {
            package: node.name.clone(),
            reason: format!(
                "version already fixed to {} but @{} is now required",
                node.version, constraint.versions
            ),
        });
    }
    for (k, v) in &constraint.variants {
        if let Some(existing) = node.variants.get(k) {
            if existing != v {
                return Err(GreedyError::ConflictingDecision {
                    package: node.name.clone(),
                    reason: format!("variant {k} already fixed to {existing} but {v} is required"),
                });
            }
        }
    }
    if let Some(cs) = &constraint.compiler {
        if !cs.satisfied_by(&node.compiler.name, &node.compiler.version) {
            return Err(GreedyError::ConflictingDecision {
                package: node.name.clone(),
                reason: format!("compiler already fixed to {} but {cs} is required", node.compiler),
            });
        }
    }
    if let Some(t) = &constraint.target {
        if t != &node.target {
            return Err(GreedyError::ConflictingDecision {
                package: node.name.clone(),
                reason: format!("target already fixed to {} but {t} is required", node.target),
            });
        }
    }
    Ok(())
}

/// Treat a (possibly named) constraint spec as an anonymous constraint on the node it is
/// being checked against.
fn anonymous_on(spec: &Spec) -> Spec {
    let mut s = spec.clone();
    if s.dependencies.is_empty() {
        s.name = None;
    }
    s
}

/// Does a `when=` spec match an already-decided node (version, variants, compiler)?
fn spec_matches_node_basics(
    when: &Spec,
    version: &Version,
    variants: &BTreeMap<String, VariantValue>,
    compiler: &Compiler,
) -> bool {
    if !when.versions.is_any() && !when.versions.satisfies(version) {
        return false;
    }
    for (k, v) in &when.variants {
        if variants.get(k) != Some(v) {
            return false;
        }
    }
    if let Some(cs) = &when.compiler {
        if !cs.satisfied_by(&compiler.name, &compiler.version) {
            return false;
        }
    }
    // Dependency pieces of `when` (e.g. `^openblas`) cannot be evaluated before the DAG
    // exists; the greedy algorithm simply ignores them — another source of
    // incompleteness noted in Section V-B3.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_repo::builtin_repo;
    use spack_spec::parse_spec;

    fn greedy(spec: &str) -> Result<GreedyResult, GreedyError> {
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        GreedyConcretizer::new(&repo, site).concretize(&parse_spec(spec).unwrap())
    }

    #[test]
    fn simple_package_concretizes() {
        let result = greedy("zlib").unwrap();
        assert_eq!(result.spec.len(), 1);
        let zlib = result.spec.node("zlib").unwrap();
        assert_eq!(zlib.version.to_string(), "1.2.12");
        assert_eq!(zlib.compiler.name, "gcc");
    }

    #[test]
    fn dependencies_and_virtuals_are_expanded() {
        let result = greedy("hdf5").unwrap();
        assert!(result.spec.contains("zlib"));
        assert!(result.spec.contains("cmake"));
        // The mpi virtual resolves to the first registered provider.
        let repo = builtin_repo();
        let first_provider = repo.providers("mpi")[0].clone();
        assert!(result.spec.contains(&first_provider));
    }

    #[test]
    fn hpctoolkit_mpich_fails_like_the_old_concretizer() {
        // Section V-B1: the greedy algorithm sets the default (false) value of the mpi
        // variant before descending, so mpich never becomes a dependency.
        let err = greedy("hpctoolkit ^mpich").unwrap_err();
        assert_eq!(
            err,
            GreedyError::DoesNotDependOn {
                package: "hpctoolkit".to_string(),
                dependency: "mpich".to_string()
            }
        );
        assert!(err.to_string().contains("does not depend on mpich"));
    }

    #[test]
    fn overconstrained_workaround_succeeds() {
        // The user workaround from the paper: explicitly set +mpi.
        let result = greedy("hpctoolkit+mpi ^mpich").unwrap();
        assert!(result.spec.contains("mpich"));
        let hpctoolkit = result.spec.node("hpctoolkit").unwrap();
        assert_eq!(hpctoolkit.variants.get("mpi"), Some(&VariantValue::Bool(true)));
    }

    #[test]
    fn version_constraints_are_respected_when_known_up_front() {
        let result = greedy("hdf5@1.10.2").unwrap();
        assert_eq!(result.spec.node("hdf5").unwrap().version.to_string(), "1.10.2");
        let err = greedy("hdf5@9.9").unwrap_err();
        assert!(matches!(err, GreedyError::NoSatisfyingVersion { .. }));
    }

    #[test]
    fn conflicts_are_only_validated_after_the_fact() {
        // example conflicts with %intel: the greedy algorithm happily decides %intel and
        // only notices at validation time.
        let err = greedy("example%intel").unwrap_err();
        assert!(matches!(err, GreedyError::ConflictTriggered { .. }));
    }

    #[test]
    fn unknown_package_is_reported() {
        assert!(matches!(greedy("nonexistent"), Err(GreedyError::UnknownPackage(_))));
    }
}

//! The ASP-based concretizer — the primary contribution of *Using Answer Set Programming
//! for HPC Dependency Solving* (SC'22), reproduced in Rust.
//!
//! The concretizer turns abstract specs (user requests such as `hdf5@1.10.2 +mpi
//! ^zlib@1.2.8:`) into concrete installation DAGs, considering every package recipe's
//! versions, variants, conditional dependencies, virtual providers, conflicts, the site's
//! compilers/OS/targets, and — optionally — the database of already-installed packages
//! for build reuse. It follows the pipeline of Section V of the paper:
//!
//! 1. **Setup** ([`facts`]) — generate facts for all possible dependencies and installed
//!    packages (10k–100k facts for realistic instances),
//! 2. **Load** — the declarative software model, `concretize.lp` ([`CONCRETIZE_LP`]),
//! 3. **Ground & solve** — delegated to the [`asp`] engine (the clingo substitute),
//!    optimizing the 15 criteria of Table II ([`criteria`]) with the build/reuse buckets
//!    of Fig. 5,
//! 4. **Extract** ([`extract`]) — build the optimal concrete DAG from the best model.
//!
//! The old greedy concretizer the paper compares against is in [`greedy`].
//!
//! # Example
//!
//! ```
//! use spack_concretizer::Concretizer;
//! use spack_repo::builtin_repo;
//!
//! let repo = builtin_repo();
//! let result = Concretizer::new(&repo).concretize_str("zlib@1.2.11").unwrap();
//! assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.11");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod criteria;
pub mod extract;
pub mod facts;
pub mod greedy;

use std::fmt;
use std::time::{Duration, Instant};

use asp::{SolveOutcome, SolverConfig};
use spack_repo::Repository;
use spack_spec::{parse_spec, ConcreteSpec, Spec};
use spack_store::Database;

pub use config::SiteConfig;
pub use criteria::{criterion, describe_priority, Criterion, CRITERIA};
pub use extract::Extraction;
pub use facts::{setup_problem, FactBuilder, SetupInfo};
pub use greedy::{GreedyConcretizer, GreedyError, GreedyResult};

/// The concretization logic program (the analogue of the ~800-line ASP program the paper
/// describes in Section V).
pub const CONCRETIZE_LP: &str = include_str!("logic/concretize.lp");

/// Errors produced by the concretizer.
#[derive(Debug)]
pub enum ConcretizeError {
    /// A root spec or dependency references a package that is not in the repository.
    UnknownPackage(String),
    /// Fact generation failed.
    Setup(String),
    /// The constraints admit no valid solution.
    Unsatisfiable,
    /// The solver failed.
    Solver(asp::AspError),
    /// The model could not be converted back into a concrete spec.
    Extraction(String),
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage(p) => write!(f, "unknown package: {p}"),
            ConcretizeError::Setup(m) => write!(f, "setup error: {m}"),
            ConcretizeError::Unsatisfiable => write!(f, "no valid configuration exists"),
            ConcretizeError::Solver(e) => write!(f, "solver error: {e}"),
            ConcretizeError::Extraction(m) => write!(f, "extraction error: {m}"),
        }
    }
}

impl std::error::Error for ConcretizeError {}

impl From<asp::AspError> for ConcretizeError {
    fn from(e: asp::AspError) -> Self {
        ConcretizeError::Solver(e)
    }
}

/// Wall-clock timings of the concretization phases, matching the instrumentation of
/// Section VII (setup, load, ground, solve).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Fact generation.
    pub setup: Duration,
    /// Parsing the logic program.
    pub load: Duration,
    /// Grounding.
    pub ground: Duration,
    /// Solving (including optimization).
    pub solve: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.setup + self.load + self.ground + self.solve
    }
}

/// The result of a successful concretization.
#[derive(Debug, Clone)]
pub struct Concretization {
    /// The optimal concrete DAG.
    pub spec: ConcreteSpec,
    /// Packages reused from the installed database, as `(package, hash)`.
    pub reused: Vec<(String, String)>,
    /// Packages that must be built from source.
    pub built: Vec<String>,
    /// The objective vector: `(priority, value)`, highest priority first.
    pub cost: Vec<(i64, i64)>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Problem-instance summary (possible packages, facts, conditions, installed).
    pub setup: SetupInfo,
    /// Solver statistics.
    pub stats: asp::Stats,
}

impl Concretization {
    /// The number of packages that will be built from source.
    pub fn build_count(&self) -> usize {
        self.built.len()
    }

    /// The number of packages reused from the store/buildcache.
    pub fn reuse_count(&self) -> usize {
        self.reused.len()
    }
}

/// The ASP-based concretizer.
pub struct Concretizer<'a> {
    repo: &'a Repository,
    site: SiteConfig,
    database: Option<&'a Database>,
    solver: SolverConfig,
}

impl<'a> Concretizer<'a> {
    /// Create a concretizer over a repository with the default (Quartz-like) site
    /// configuration and no installed-package reuse.
    pub fn new(repo: &'a Repository) -> Self {
        Concretizer {
            repo,
            site: SiteConfig::default(),
            database: None,
            solver: SolverConfig::default(),
        }
    }

    /// Use a specific site configuration.
    pub fn with_site(mut self, site: SiteConfig) -> Self {
        self.site = site;
        self
    }

    /// Enable reuse of the given installed-package database / buildcache (Section VI).
    pub fn with_database(mut self, database: &'a Database) -> Self {
        self.database = Some(database);
        self
    }

    /// Use a specific solver configuration (preset, strategy, seed).
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// The site configuration in use.
    pub fn site(&self) -> &SiteConfig {
        &self.site
    }

    /// Concretize a single spec given as text.
    pub fn concretize_str(&self, text: &str) -> Result<Concretization, ConcretizeError> {
        let spec = parse_spec(text).map_err(|e| ConcretizeError::Setup(e.to_string()))?;
        self.concretize(&[spec])
    }

    /// Concretize one or more abstract root specs into a single concrete DAG.
    pub fn concretize(&self, roots: &[Spec]) -> Result<Concretization, ConcretizeError> {
        if roots.is_empty() {
            return Err(ConcretizeError::Setup("at least one root spec is required".into()));
        }
        // Phase 1: setup (fact generation).
        let setup_start = Instant::now();
        let (mut ctl, setup_info) =
            setup_problem(self.repo, &self.site, self.database, roots, self.solver.clone())?;
        let setup_time = setup_start.elapsed();

        // Phase 2: load the logic program.
        ctl.add_program(CONCRETIZE_LP)?;

        // Phases 3 and 4: ground and solve.
        ctl.ground()?;
        let outcome = ctl.solve()?;

        let stats = ctl.stats().clone();
        let timings = PhaseTimings {
            setup: setup_time,
            load: stats.load_time,
            ground: stats.ground_time,
            solve: stats.solve_time,
        };

        match outcome {
            SolveOutcome::Unsatisfiable => Err(ConcretizeError::Unsatisfiable),
            SolveOutcome::Optimal { model, cost } => {
                let root_names: Vec<String> = roots.iter().filter_map(|r| r.name.clone()).collect();
                let extraction = extract::extract(&model, &root_names)?;
                // Sanity check: every named (non-virtual) root must be present.
                for root in roots {
                    if let Some(name) = &root.name {
                        if !self.repo.is_virtual(name) && !extraction.spec.contains(name) {
                            return Err(ConcretizeError::Extraction(format!(
                                "root {name} missing from the solution"
                            )));
                        }
                    }
                }
                Ok(Concretization {
                    spec: extraction.spec,
                    reused: extraction.reused,
                    built: extraction.built,
                    cost,
                    timings,
                    setup: setup_info,
                    stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_repo::builtin_repo;
    use spack_spec::VariantValue;

    fn concretize(text: &str) -> Result<Concretization, ConcretizeError> {
        let repo = builtin_repo();
        Concretizer::new(&repo)
            .with_site(SiteConfig::minimal())
            .concretize_str(text)
    }

    #[test]
    fn zlib_concretizes_to_newest_version() {
        let result = concretize("zlib").unwrap();
        assert_eq!(result.spec.len(), 1);
        let zlib = result.spec.node("zlib").unwrap();
        assert_eq!(zlib.version.to_string(), "1.2.12");
        assert_eq!(zlib.compiler.name, "gcc");
        assert_eq!(zlib.os, "centos8");
        assert_eq!(result.built, vec!["zlib".to_string()]);
        assert!(result.timings.total() > Duration::ZERO);
    }

    #[test]
    fn version_constraints_are_honoured() {
        let result = concretize("zlib@1.2.8").unwrap();
        assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.8");
    }

    #[test]
    fn unsatisfiable_version_is_reported() {
        let err = concretize("zlib@9.9").unwrap_err();
        assert!(matches!(err, ConcretizeError::Unsatisfiable), "{err}");
    }

    #[test]
    fn conditional_dependency_follows_variant() {
        // bzip2 is only a dependency of example when +bzip (the default) is on.
        let with = concretize("example").unwrap();
        assert!(with.spec.contains("bzip2"));
        let without = concretize("example~bzip").unwrap();
        assert!(!without.spec.contains("bzip2"));
        assert_eq!(
            without.spec.node("example").unwrap().variants.get("bzip"),
            Some(&VariantValue::Bool(false))
        );
    }

    #[test]
    fn virtual_dependencies_get_exactly_one_provider() {
        let repo = builtin_repo();
        let result = concretize("example").unwrap();
        let providers: Vec<&str> = repo
            .providers("mpi")
            .iter()
            .map(|s| s.as_str())
            .filter(|p| result.spec.contains(p))
            .collect();
        assert_eq!(providers.len(), 1, "exactly one mpi provider expected: {providers:?}");
        let provider_node = result.spec.node(providers[0]).unwrap();
        assert!(provider_node.provides.contains(&"mpi".to_string()));
    }

    #[test]
    fn hpctoolkit_mpich_is_solved_by_flipping_the_variant() {
        // The completeness example of Section V-B1: the ASP concretizer finds that
        // setting +mpi is the only way for mpich to be in the solution.
        let result = concretize("hpctoolkit ^mpich").unwrap();
        assert!(result.spec.contains("mpich"));
        let hpctoolkit = result.spec.node("hpctoolkit").unwrap();
        assert_eq!(hpctoolkit.variants.get("mpi"), Some(&VariantValue::Bool(true)));
    }
}

//! The ASP-based concretizer — the primary contribution of *Using Answer Set Programming
//! for HPC Dependency Solving* (SC'22), reproduced in Rust.
//!
//! The concretizer turns abstract specs (user requests such as `hdf5@1.10.2 +mpi
//! ^zlib@1.2.8:`) into concrete installation DAGs, considering every package recipe's
//! versions, variants, conditional dependencies, virtual providers, conflicts, the site's
//! compilers/OS/targets, and — optionally — the database of already-installed packages
//! for build reuse. It follows the pipeline of Section V of the paper:
//!
//! 1. **Setup** ([`facts`]) — generate facts for all possible dependencies and installed
//!    packages (10k–100k facts for realistic instances),
//! 2. **Load** — the declarative software model, `concretize.lp` ([`CONCRETIZE_LP`]),
//! 3. **Ground & solve** — delegated to the [`asp`] engine (the clingo substitute),
//!    optimizing the 15 criteria of Table II ([`criteria`]) with the build/reuse buckets
//!    of Fig. 5,
//! 4. **Extract** ([`extract`]) — build the optimal concrete DAG from the best model.
//!
//! The old greedy concretizer the paper compares against is in [`greedy`].
//!
//! # Example
//!
//! ```
//! use spack_concretizer::Concretizer;
//! use spack_repo::builtin_repo;
//!
//! let repo = builtin_repo();
//! let result = Concretizer::new(&repo).concretize_str("zlib@1.2.11").unwrap();
//! assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.11");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod criteria;
pub mod diagnose;
pub mod durable;
pub mod extract;
pub mod facts;
pub mod greedy;
pub mod options;
pub mod server;
pub mod session;

use std::fmt;
use std::time::{Duration, Instant};

use asp::{AssumeOutcome, Assumption, SolverConfig, Value};
use spack_repo::Repository;
use spack_spec::{parse_spec, ConcreteSpec, Spec};
use spack_store::Database;

pub use config::SiteConfig;
pub use criteria::{criterion, describe_priority, Criterion, CRITERIA};
pub use diagnose::{Diagnostic, DiagnosticsStats, Severity};
pub use durable::{BatchCounters, BatchOutcome, ItemClass, ItemRecord, StateDir};
pub use extract::Extraction;
pub use facts::{setup_problem, BaseFacts, FactBuilder, SetupInfo};
pub use greedy::{GreedyConcretizer, GreedyError, GreedyResult};
pub use options::SolveOptions;
pub use session::{BaseDelta, ConcretizerSession, SessionStats};

/// The concretization logic program (the analogue of the ~800-line ASP program the paper
/// describes in Section V). Violations derive `error(Priority, Msg, Args)`-scheme atoms
/// interpreted by [`ERROR_GUARD_LP`].
pub const CONCRETIZE_LP: &str = include_str!("logic/concretize.lp");

/// Companion of [`CONCRETIZE_LP`]: both interpretations of the error atoms — hard
/// integrity constraints for the normal solve, minimized explanations for the relaxed
/// diagnostics solve — in one program, switched by the `#external` guard atom
/// `relax_mode` whose truth each solve fixes through an assumption. One grounding
/// therefore serves both phases (the fold of the old `error_hard.lp` /
/// `error_relax.lp` split).
pub const ERROR_GUARD_LP: &str = include_str!("logic/error_guard.lp");

/// Objective priority of the lowest error level in [`ERROR_GUARD_LP`]; the relaxed
/// solve optimizes only levels at or above this floor, and the normal solve's reported
/// cost vector is truncated below it (error levels are trivially zero in hard mode).
const ERROR_PRIORITY_FLOOR: i64 = 1000;

/// The `#external` guard atom of [`ERROR_GUARD_LP`], pinned false on the normal solve
/// and true on the relaxed diagnostics solve.
const RELAX_MODE: &str = "relax_mode";

/// The `#external` grounding-universe seed of [`CONCRETIZE_LP`], pinned false on
/// every solve (it exists only so a frozen session base can pre-ground the per-node
/// decision cascade for every package).
const NODE_SEED: &str = "node_seed";

/// Errors produced by the concretizer.
#[derive(Debug)]
pub enum ConcretizeError {
    /// A root spec or dependency references a package that is not in the repository.
    UnknownPackage(String),
    /// Fact generation failed.
    Setup(String),
    /// The constraints admit no valid solution. Carries the rendered explanation of
    /// *why* (see [`diagnose`]) and the cost accounting of producing it.
    Unsatisfiable {
        /// Why no configuration exists, most severe first — never empty.
        diagnostics: Vec<Diagnostic>,
        /// Unsat-core sizes, minimization rounds, combined per-phase accounting, and
        /// second-phase solve time (boxed: the accounting is bulky and the error is
        /// returned through many `Result`s).
        stats: Box<DiagnosticsStats>,
    },
    /// The solver failed.
    Solver(asp::AspError),
    /// The model could not be converted back into a concrete spec.
    Extraction(String),
    /// The solve budget (wall deadline and/or conflict limit) was exhausted before
    /// optimality was proven. Degrades gracefully: when branch and bound had already
    /// proven some stable model, it is carried here, marked non-optimal
    /// ([`Concretization::optimal`] is `false`), instead of being thrown away.
    Budget {
        /// The best model proven before the budget ran out, if any.
        partial_best: Option<Box<Concretization>>,
        /// Solver statistics of the interrupted solve (boxed: bulky, and the error is
        /// returned through many `Result`s).
        stats: Box<asp::Stats>,
    },
    /// A panic escaped a per-request solve (isolated by the batch paths so one
    /// poisoned request cannot kill its siblings). Carries the panic message.
    Internal(String),
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage(p) => write!(f, "unknown package: {p}"),
            ConcretizeError::Setup(m) => write!(f, "setup error: {m}"),
            ConcretizeError::Unsatisfiable { diagnostics, .. } => {
                // Never empty: enforced at construction by `ConcretizeError::
                // unsatisfiable`, so the report always leads with a specific message.
                debug_assert!(!diagnostics.is_empty(), "Unsatisfiable without diagnostics");
                write!(f, "no valid configuration exists")?;
                if let Some(first) = diagnostics.first() {
                    write!(f, ": {}", first.message)?;
                    if diagnostics.len() > 1 {
                        write!(f, " (+{} more diagnostics)", diagnostics.len() - 1)?;
                    }
                }
                Ok(())
            }
            ConcretizeError::Solver(e) => write!(f, "solver error: {e}"),
            ConcretizeError::Extraction(m) => write!(f, "extraction error: {m}"),
            ConcretizeError::Budget { partial_best: Some(c), .. } => write!(
                f,
                "solve budget exhausted; best proven (non-optimal) model has {} packages",
                c.spec.len()
            ),
            ConcretizeError::Budget { partial_best: None, .. } => {
                write!(f, "solve budget exhausted before any model was found")
            }
            ConcretizeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl ConcretizeError {
    /// The single construction site of [`ConcretizeError::Unsatisfiable`], enforcing
    /// the documented "diagnostics never empty" invariant: when neither the relaxed
    /// solve nor the unsat core produced an explanation, the structural fallback
    /// diagnostic is inserted — no error path can fabricate an empty report.
    fn unsatisfiable(
        mut diagnostics: Vec<Diagnostic>,
        stats: DiagnosticsStats,
        roots: &[Spec],
    ) -> Self {
        if diagnostics.is_empty() {
            let roots_text = roots.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
            diagnostics.push(diagnose::structural_diagnostic(&roots_text));
        }
        ConcretizeError::Unsatisfiable { diagnostics, stats: Box::new(stats) }
    }
}

impl std::error::Error for ConcretizeError {}

/// The worst-class result taxonomy every front end shares: the batch runner's
/// per-item class, the DLQ record's `status`, the server's [`server::wire::SolveResponse`]
/// `status` field, and the process exit code all map through this one enum.
///
/// Ordering is by exit-code severity (a batch exits with the *worst* class
/// observed): `Ok` < `Unsat` < `Parse` < `Budget` < `Internal`. Exit code `1` is
/// reserved for pipeline errors (bad arguments, I/O) and never produced by a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResultClass {
    /// Concretized to an optimal DAG (exit code 0).
    Ok,
    /// Well-formed but unsatisfiable; carries diagnostics (exit code 2).
    Unsat,
    /// The spec text did not parse, or fact setup rejected the request (exit code 3).
    Parse,
    /// The solve budget ran out before optimality was proven (exit code 4).
    Budget,
    /// An internal error or an isolated panic (exit code 5).
    Internal,
}

impl ResultClass {
    /// The exit code this class contributes under the worst-class-wins contract.
    pub fn exit_code(self) -> u8 {
        match self {
            ResultClass::Ok => 0,
            ResultClass::Unsat => 2,
            ResultClass::Parse => 3,
            ResultClass::Budget => 4,
            ResultClass::Internal => 5,
        }
    }

    /// Stable wire name, used in checkpoint records, DLQ entries, and the server's
    /// `status` response field.
    pub fn as_str(self) -> &'static str {
        match self {
            ResultClass::Ok => "ok",
            ResultClass::Unsat => "unsat",
            ResultClass::Parse => "parse",
            ResultClass::Budget => "budget",
            ResultClass::Internal => "internal",
        }
    }

    /// Parse a wire name produced by [`ResultClass::as_str`].
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => ResultClass::Ok,
            "unsat" => ResultClass::Unsat,
            "parse" => ResultClass::Parse,
            "budget" => ResultClass::Budget,
            "internal" => ResultClass::Internal,
            _ => return None,
        })
    }

    /// Classify a whole concretization result (`Ok` for a success).
    pub fn of(result: &Result<Concretization, ConcretizeError>) -> Self {
        match result {
            Ok(_) => ResultClass::Ok,
            Err(e) => e.class(),
        }
    }
}

impl fmt::Display for ResultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ConcretizeError {
    /// The worst-class taxonomy of this error — the one source of truth behind the
    /// batch exit-code contract, DLQ records, and the server's `status` field.
    ///
    /// `Setup` and `UnknownPackage` classify as [`ResultClass::Parse`]: both mean
    /// "your request is malformed", distinct from "the constraints are
    /// unsatisfiable" and from "the tool broke".
    pub fn class(&self) -> ResultClass {
        match self {
            ConcretizeError::UnknownPackage(_) | ConcretizeError::Setup(_) => ResultClass::Parse,
            ConcretizeError::Unsatisfiable { .. } => ResultClass::Unsat,
            ConcretizeError::Budget { .. } => ResultClass::Budget,
            ConcretizeError::Solver(_)
            | ConcretizeError::Extraction(_)
            | ConcretizeError::Internal(_) => ResultClass::Internal,
        }
    }
}

impl From<asp::AspError> for ConcretizeError {
    fn from(e: asp::AspError) -> Self {
        ConcretizeError::Solver(e)
    }
}

/// Wall-clock timings of the concretization phases, matching the instrumentation of
/// Section VII (setup, load, ground, solve).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Fact generation.
    pub setup: Duration,
    /// Parsing the logic program.
    pub load: Duration,
    /// Grounding.
    pub ground: Duration,
    /// Solving (including optimization).
    pub solve: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.setup + self.load + self.ground + self.solve
    }
}

/// The result of a successful concretization.
#[derive(Debug, Clone)]
pub struct Concretization {
    /// The optimal concrete DAG.
    pub spec: ConcreteSpec,
    /// Packages reused from the installed database, as `(package, hash)`.
    pub reused: Vec<(String, String)>,
    /// Packages that must be built from source.
    pub built: Vec<String>,
    /// The objective vector: `(priority, value)`, highest priority first. Levels with
    /// a value of zero are omitted (an absent level means "cost 0"), so the vector is
    /// identical whether the solve ran one-shot or on a session.
    pub cost: Vec<(i64, i64)>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Problem-instance summary (possible packages, facts, conditions, installed).
    pub setup: SetupInfo,
    /// Solver statistics.
    pub stats: asp::Stats,
    /// Was this DAG proven optimal? `true` on every normal solve; `false` only for
    /// the partial model carried by [`ConcretizeError::Budget`] — the best model
    /// proven before the solve budget ran out.
    pub optimal: bool,
}

impl Concretization {
    /// The number of packages that will be built from source.
    pub fn build_count(&self) -> usize {
        self.built.len()
    }

    /// The number of packages reused from the store/buildcache.
    pub fn reuse_count(&self) -> usize {
        self.reused.len()
    }
}

/// The ASP-based concretizer.
pub struct Concretizer<'a> {
    repo: &'a Repository,
    site: SiteConfig,
    database: Option<&'a Database>,
    solver: SolverConfig,
}

impl<'a> Concretizer<'a> {
    /// Create a concretizer over a repository with the default (Quartz-like) site
    /// configuration and no installed-package reuse.
    pub fn new(repo: &'a Repository) -> Self {
        Concretizer {
            repo,
            site: SiteConfig::default(),
            database: None,
            solver: SolverConfig::default(),
        }
    }

    /// Configure every option at once from a [`SolveOptions`] value — the site
    /// model, the optional reuse database, and the full solver configuration
    /// (budget, portfolio, nogood store, seed). This is the preferred entry
    /// point; the `with_*` builders below are thin forwarders kept so existing
    /// code and examples compile.
    pub fn with_options(mut self, options: SolveOptions<'a>) -> Self {
        self.site = options.site;
        self.database = options.database;
        self.solver = options.solver;
        self
    }

    /// The options currently configured, as one [`SolveOptions`] value.
    pub fn options(&self) -> SolveOptions<'a> {
        SolveOptions {
            site: self.site.clone(),
            database: self.database,
            solver: self.solver.clone(),
        }
    }

    /// Use a specific site configuration.
    ///
    /// Deprecated in favor of [`SolveOptions::site`] + [`Concretizer::with_options`];
    /// kept as a thin forwarder.
    pub fn with_site(mut self, site: SiteConfig) -> Self {
        self.site = site;
        self
    }

    /// Enable reuse of the given installed-package database / buildcache (Section VI).
    ///
    /// Deprecated in favor of [`SolveOptions::database`] +
    /// [`Concretizer::with_options`]; kept as a thin forwarder.
    pub fn with_database(mut self, database: &'a Database) -> Self {
        self.database = Some(database);
        self
    }

    /// Use a specific solver configuration (preset, strategy, seed).
    ///
    /// Deprecated in favor of [`SolveOptions::solver`] + [`Concretizer::with_options`];
    /// kept as a thin forwarder.
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Bound every solve by a [`asp::SolveBudget`] (wall deadline and/or conflict
    /// limit). An exhausted budget surfaces as [`ConcretizeError::Budget`], carrying
    /// the best model proven so far (marked non-optimal) when there is one.
    ///
    /// Deprecated in favor of [`SolveOptions::budget`] + [`Concretizer::with_options`];
    /// kept as a thin forwarder.
    pub fn with_budget(mut self, budget: asp::SolveBudget) -> Self {
        self.solver.budget = budget.is_bounded().then_some(budget);
        self
    }

    /// Race `k` differently-seeded solver configurations per optimizer search and take
    /// the first winner (`0` or `1` = serial). Results are byte-identical regardless
    /// of `k` — the portfolio only changes how fast the canonical answer is found.
    ///
    /// Deprecated in favor of [`SolveOptions::portfolio`] +
    /// [`Concretizer::with_options`]; kept as a thin forwarder.
    pub fn with_portfolio(mut self, k: usize) -> Self {
        self.solver.portfolio = k;
        self
    }

    /// Enable or disable the session's cross-request nogood store (default on):
    /// provenance-safe clauses learned by one request are transferred to later
    /// requests with an identical translation. Results are byte-identical either way.
    /// Only affects sessions created by [`Concretizer::session`]; one-shot solves
    /// never share clauses.
    ///
    /// Deprecated in favor of [`SolveOptions::nogood_store`] +
    /// [`Concretizer::with_options`]; kept as a thin forwarder.
    pub fn with_nogood_store(mut self, enabled: bool) -> Self {
        self.solver.share_nogoods = enabled;
        self
    }

    /// The site configuration in use.
    pub fn site(&self) -> &SiteConfig {
        &self.site
    }

    /// Concretize a single spec given as text.
    pub fn concretize_str(&self, text: &str) -> Result<Concretization, ConcretizeError> {
        let spec = parse_spec(text).map_err(|e| ConcretizeError::Setup(e.to_string()))?;
        self.concretize(&[spec])
    }

    /// Concretize one or more abstract root specs into a single concrete DAG.
    ///
    /// On infeasible input this runs the single-grounding diagnostics pipeline (see
    /// [`diagnose`]): the normal solve pins every root-spec condition through solver
    /// assumptions (and the `relax_mode` guard false) so UNSAT yields an unsat core,
    /// the core is minimized by deletion, and a relaxed re-solve *on the same ground
    /// program* — `relax_mode` flipped true — minimizes the
    /// `error(Priority, Msg, Args)` atoms to produce per-rule explanations. The
    /// returned [`ConcretizeError::Unsatisfiable`] always carries at least one
    /// diagnostic.
    pub fn concretize(&self, roots: &[Spec]) -> Result<Concretization, ConcretizeError> {
        if roots.is_empty() {
            return Err(ConcretizeError::Setup("at least one root spec is required".into()));
        }
        // Phase 1: setup (fact generation).
        let setup_start = Instant::now();
        let (mut ctl, setup_info) =
            setup_problem(self.repo, &self.site, self.database, roots, self.solver.clone())?;
        let setup_time = setup_start.elapsed();

        // Phase 2: load the software model plus both guarded error interpretations.
        ctl.add_program(CONCRETIZE_LP)?;
        ctl.add_program(ERROR_GUARD_LP)?;

        solve_prepared(self.repo, roots, ctl, setup_info, setup_time)
    }
}

/// The shared back half of a concretization — phases 3 and 4 — used by both the
/// one-shot [`Concretizer::concretize`] and [`ConcretizerSession`] requests: ground
/// (incrementally, when `ctl` is a session fork), solve in hard mode with the
/// root-spec conditions pinned true and the `relax_mode` guard pinned false, and
/// either extract the optimal DAG or run the diagnostics pipeline.
pub(crate) fn solve_prepared(
    repo: &Repository,
    roots: &[Spec],
    mut ctl: asp::Control,
    setup_info: SetupInfo,
    setup_time: Duration,
) -> Result<Concretization, ConcretizeError> {
    ctl.ground()?;
    let root_assumptions: Vec<Assumption> = setup_info
        .root_conditions
        .iter()
        .map(|(id, _)| Assumption::holds("assumed", &[Value::Int(*id)]))
        .collect();
    // The guards go FIRST — `explain_unsat` decodes core indices under the
    // invariant that indices 0 and 1 are the relax_mode and node_seed guards and
    // index i>1 is root i-2. (The engine realizes an external assumption as a
    // root-level unit clause wherever it sits, and it never appears in cores, so
    // only the index mapping depends on this position.)
    let mut assumptions = Vec::with_capacity(root_assumptions.len() + 2);
    assumptions.push(Assumption::fails(RELAX_MODE, &[]));
    assumptions.push(Assumption::fails(NODE_SEED, &[]));
    assumptions.extend(root_assumptions.iter().cloned());
    let outcome = ctl.solve_with_assumptions(&assumptions)?;

    let stats = ctl.stats().clone();
    let timings = PhaseTimings {
        setup: setup_time,
        load: stats.load_time,
        ground: stats.ground_time,
        solve: stats.solve_time,
    };

    match outcome {
        AssumeOutcome::Unsatisfiable { core } => {
            Err(explain_unsat(roots, &setup_info, &mut ctl, &root_assumptions, core, setup_time))
        }
        AssumeOutcome::Optimal { model, cost } => {
            build_concretization(repo, roots, model, cost, timings, setup_info, stats, true)
        }
        AssumeOutcome::Budget { partial } => {
            // Graceful degradation: branch and bound may have proven a stable model
            // before the budget ran out — carry it, marked non-optimal, instead of
            // returning nothing. An extraction hiccup on the partial degrades to
            // "no partial" rather than masking the budget outcome.
            let partial_best = partial.and_then(|(model, cost)| {
                build_concretization(
                    repo,
                    roots,
                    model,
                    cost,
                    timings,
                    setup_info.clone(),
                    stats.clone(),
                    false,
                )
                .ok()
                .map(Box::new)
            });
            Err(ConcretizeError::Budget { partial_best, stats: Box::new(stats) })
        }
    }
}

/// Phase 4 (extract): turn the winning model and objective vector into a
/// [`Concretization`]. Shared by the optimal path and the budget path's partial
/// model (which differs only in the `optimal` marker).
#[allow(clippy::too_many_arguments)]
fn build_concretization(
    repo: &Repository,
    roots: &[Spec],
    model: asp::Model,
    cost: Vec<(i64, i64)>,
    timings: PhaseTimings,
    setup_info: SetupInfo,
    stats: asp::Stats,
    optimal: bool,
) -> Result<Concretization, ConcretizeError> {
    // The error levels of ERROR_GUARD_LP are trivially zero in hard mode;
    // they are an implementation detail of the diagnostics fold, not part
    // of the Table II objective vector. Zero-valued Table II levels are
    // dropped too: which levels *materialize* depends on how much of the
    // package universe was ground (a session base covers the whole repo,
    // a one-shot solve only the roots' closure), while an absent level
    // means exactly "cost 0" — normalizing to the nonzero levels makes the
    // objective vector identical across both modes.
    let cost: Vec<(i64, i64)> =
        cost.into_iter().filter(|&(p, v)| p < ERROR_PRIORITY_FLOOR && v != 0).collect();
    let root_names: Vec<String> = roots.iter().filter_map(|r| r.name.clone()).collect();
    let extraction = extract::extract(&model, &root_names)?;
    // Sanity check: every named (non-virtual) root must be present.
    for root in roots {
        if let Some(name) = &root.name {
            if !repo.is_virtual(name) && !extraction.spec.contains(name) {
                return Err(ConcretizeError::Extraction(format!(
                    "root {name} missing from the solution"
                )));
            }
        }
    }
    Ok(Concretization {
        spec: extraction.spec,
        reused: extraction.reused,
        built: extraction.built,
        cost,
        timings,
        setup: setup_info,
        stats,
        optimal,
    })
}

/// The second phase of the diagnostics pipeline, run on the *same* control as the
/// failed normal solve: minimize the unsat core, flip the `relax_mode` guard true
/// and re-solve (errors minimized instead of forbidden — no second setup, no
/// second grounding), and render both into [`Diagnostic`]s. The relaxed solve
/// warm-starts from the failed hard solve's loop nogoods and provenance-safe learned
/// clauses through the control's session clause cache
/// ([`DiagnosticsStats::warm_clauses`] reports how many were replayed).
fn explain_unsat(
    roots: &[Spec],
    setup_info: &SetupInfo,
    ctl: &mut asp::Control,
    root_assumptions: &[Assumption],
    core: Vec<usize>,
    setup_time: Duration,
) -> ConcretizeError {
    let second_phase_start = Instant::now();
    let ground_before = ctl.stats().ground_time;
    // The search core indexes the combined assumption slice (the pinned relax_mode
    // and node_seed guards at indices 0 and 1, then the roots). The guards are solve
    // parameterization, not blameable user requirements — strip them (and shift
    // the root indices back) before minimizing and reporting.
    let search_core: Vec<usize> = core.into_iter().filter(|&i| i > 1).map(|i| i - 2).collect();
    let core_size = search_core.len();
    let relax_off = [Assumption::fails(RELAX_MODE, &[]), Assumption::fails(NODE_SEED, &[])];
    let (min_core, rounds) = match ctl.minimize_core(root_assumptions, &search_core, &relax_off) {
        Ok(r) => r,
        Err(e) => return ConcretizeError::Solver(e),
    };
    // The minimized core, as the user wrote the requirements.
    let core_texts: Vec<String> = min_core
        .iter()
        .filter_map(|&i| setup_info.root_conditions.get(i).map(|(_, t)| t.clone()))
        .collect();

    // Relaxed re-solve, reusing the first control's ground program: same facts,
    // same root assumptions, only the relax_mode guard flips true. The priority
    // floor skips the Table II levels entirely — only the explanation matters
    // here. Engine failures propagate as real errors; they are never degraded
    // into an empty (fabricated) report.
    let mut relaxed_assumptions = root_assumptions.to_vec();
    relaxed_assumptions.push(Assumption::holds(RELAX_MODE, &[]));
    relaxed_assumptions.push(Assumption::fails(NODE_SEED, &[]));
    let mut diagnostics =
        match ctl.solve_with_assumptions_floor(&relaxed_assumptions, ERROR_PRIORITY_FLOOR) {
            Ok(AssumeOutcome::Optimal { model, .. }) => diagnose::diagnostics_from_model(&model),
            // Structurally infeasible even with errors relaxed (e.g. two root
            // requirements pinning one decision both ways): the core explains it.
            Ok(AssumeOutcome::Unsatisfiable { .. }) => Vec::new(),
            // The solve budget ran out during the explanation phase: a partial
            // error model still names real violations (possibly more than the
            // minimal set); with no partial the core-only explanation below stands.
            Ok(AssumeOutcome::Budget { partial }) => partial
                .map(|(model, _)| diagnose::diagnostics_from_model(&model))
                .unwrap_or_default(),
            Err(e) => return ConcretizeError::Solver(e),
        };

    // Attach the core as provenance to every model-level diagnostic, and as its own
    // leading diagnostic naming the user requirements that cannot hold together —
    // a supporting Note when model-level errors carry the specifics, the primary
    // Error when the core is the only explanation (structural infeasibility).
    for d in &mut diagnostics {
        d.provenance = core_texts.clone();
    }
    if let Some(mut core_diag) = diagnose::core_diagnostic(&core_texts) {
        if !diagnostics.is_empty() {
            core_diag.severity = Severity::Note;
        }
        diagnostics.insert(0, core_diag);
    }

    let stats = ctl.stats();
    ConcretizeError::unsatisfiable(
        diagnostics,
        DiagnosticsStats {
            core_size,
            minimized_core_size: min_core.len(),
            minimization_rounds: rounds,
            second_phase: second_phase_start.elapsed(),
            phases: PhaseTimings {
                setup: setup_time,
                load: stats.load_time,
                ground: stats.ground_time,
                solve: stats.solve_time,
            },
            second_phase_ground: stats.ground_time.saturating_sub(ground_before),
            warm_clauses: stats.warm_clauses,
            ground_delta: stats.ground.delta,
        },
        roots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_repo::builtin_repo;
    use spack_spec::VariantValue;

    fn concretize(text: &str) -> Result<Concretization, ConcretizeError> {
        let repo = builtin_repo();
        Concretizer::new(&repo).with_site(SiteConfig::minimal()).concretize_str(text)
    }

    #[test]
    fn result_class_is_the_single_exit_code_source_of_truth() {
        // The worst-class contract (batch exit codes, DLQ records, server status)
        // all routes through ConcretizeError::class(); pin every mapping.
        let unsat =
            ConcretizeError::Unsatisfiable { diagnostics: Vec::new(), stats: Box::default() };
        assert_eq!(unsat.class(), ResultClass::Unsat);
        assert_eq!(ConcretizeError::Setup("x".into()).class(), ResultClass::Parse);
        assert_eq!(ConcretizeError::UnknownPackage("x".into()).class(), ResultClass::Parse);
        let solver = ConcretizeError::Solver(asp::AspError::Usage("x".into()));
        assert_eq!(solver.class(), ResultClass::Internal);
        assert_eq!(ConcretizeError::Extraction("x".into()).class(), ResultClass::Internal);
        assert_eq!(ConcretizeError::Internal("x".into()).class(), ResultClass::Internal);

        for (class, code, name) in [
            (ResultClass::Ok, 0, "ok"),
            (ResultClass::Unsat, 2, "unsat"),
            (ResultClass::Parse, 3, "parse"),
            (ResultClass::Budget, 4, "budget"),
            (ResultClass::Internal, 5, "internal"),
        ] {
            assert_eq!(class.exit_code(), code);
            assert_eq!(class.as_str(), name);
            assert_eq!(ResultClass::from_wire(name), Some(class));
            assert_eq!(class.to_string(), name);
        }
        assert_eq!(ResultClass::from_wire("bogus"), None);
        // Worst-class ordering: later variants are worse (batch takes the max).
        assert!(ResultClass::Ok < ResultClass::Unsat);
        assert!(ResultClass::Unsat < ResultClass::Parse);
        assert!(ResultClass::Parse < ResultClass::Budget);
        assert!(ResultClass::Budget < ResultClass::Internal);
        // ResultClass::of classifies whole results.
        assert_eq!(
            ResultClass::of(&Err(ConcretizeError::Internal("x".into()))),
            ResultClass::Internal
        );
    }

    #[test]
    fn zlib_concretizes_to_newest_version() {
        let result = concretize("zlib").unwrap();
        assert_eq!(result.spec.len(), 1);
        let zlib = result.spec.node("zlib").unwrap();
        assert_eq!(zlib.version.to_string(), "1.2.12");
        assert_eq!(zlib.compiler.name, "gcc");
        assert_eq!(zlib.os, "centos8");
        assert_eq!(result.built, vec!["zlib".to_string()]);
        assert!(result.timings.total() > Duration::ZERO);
    }

    #[test]
    fn version_constraints_are_honoured() {
        let result = concretize("zlib@1.2.8").unwrap();
        assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.8");
    }

    #[test]
    fn unsatisfiable_version_is_reported() {
        let err = concretize("zlib@9.9").unwrap_err();
        match &err {
            ConcretizeError::Unsatisfiable { diagnostics, stats } => {
                assert!(!diagnostics.is_empty(), "diagnostics must never be empty");
                assert!(diagnostics.iter().any(|d| d.message.contains("zlib")), "{diagnostics:?}");
                assert!(stats.minimized_core_size <= stats.core_size.max(1));
            }
            other => panic!("expected Unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn conditional_dependency_follows_variant() {
        // bzip2 is only a dependency of example when +bzip (the default) is on.
        let with = concretize("example").unwrap();
        assert!(with.spec.contains("bzip2"));
        let without = concretize("example~bzip").unwrap();
        assert!(!without.spec.contains("bzip2"));
        assert_eq!(
            without.spec.node("example").unwrap().variants.get("bzip"),
            Some(&VariantValue::Bool(false))
        );
    }

    #[test]
    fn virtual_dependencies_get_exactly_one_provider() {
        let repo = builtin_repo();
        let result = concretize("example").unwrap();
        let providers: Vec<&str> = repo
            .providers("mpi")
            .iter()
            .map(|s| s.as_str())
            .filter(|p| result.spec.contains(p))
            .collect();
        assert_eq!(providers.len(), 1, "exactly one mpi provider expected: {providers:?}");
        let provider_node = result.spec.node(providers[0]).unwrap();
        assert!(provider_node.provides.contains(&"mpi".to_string()));
    }

    #[test]
    fn hpctoolkit_mpich_is_solved_by_flipping_the_variant() {
        // The completeness example of Section V-B1: the ASP concretizer finds that
        // setting +mpi is the only way for mpich to be in the solution.
        let result = concretize("hpctoolkit ^mpich").unwrap();
        assert!(result.spec.contains("mpich"));
        let hpctoolkit = result.spec.node("hpctoolkit").unwrap();
        assert_eq!(hpctoolkit.variants.get("mpi"), Some(&VariantValue::Bool(true)));
    }
}

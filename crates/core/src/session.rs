//! Multi-shot concretizer sessions: ground the base problem once, answer many
//! requests.
//!
//! A one-shot [`Concretizer::concretize`](crate::Concretizer::concretize) call pays
//! setup, program parsing, and grounding from scratch for every request, even though
//! the repository / site / buildcache facts — the overwhelming majority of the ground
//! program — are identical across requests. A [`ConcretizerSession`] amortizes all of
//! that (clingo's multi-shot `ground`/`solve` workflow):
//!
//! 1. **Base, once** — [`Concretizer::session`](crate::Concretizer::session) emits the
//!    base facts for the *whole* repository ([`crate::FactBuilder::base`],
//!    digest-keyed), parses `concretize.lp` + `error_guard.lp`, and grounds everything
//!    into a frozen base ([`asp::Control::freeze_base`]).
//! 2. **Requests, many** — each [`ConcretizerSession::concretize`] forks a cheap
//!    per-request control from the frozen base, adds only the request's spec facts,
//!    and grounds them *incrementally* (semi-naive continuation + touched-rule
//!    re-instantiation). Results are identical to one-shot solves — the cross-check
//!    proptests assert DAG, objective vector, and diagnostics equality.
//! 3. **Batches, parallel** — [`ConcretizerSession::concretize_batch`] solves
//!    independent requests concurrently (rayon); the session is `Sync`, every request
//!    works on its own fork of the shared frozen base.
//!
//! This is the enabling layer for serving concretization as a long-lived service
//! (sharding and an async front end ride on top of it — see the ROADMAP).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use spack_repo::{Repository, VersionDecl};
use spack_spec::{parse_spec, Spec, Version};
use spack_store::{synthesize_install, BuildcacheConfig, Database};

use crate::facts::BaseFacts;
use crate::{
    solve_prepared, Concretization, ConcretizeError, Concretizer, CONCRETIZE_LP, ERROR_GUARD_LP,
};

/// A description of base-universe churn — versions published or yanked from the
/// repository, binaries pushed to or removed from the buildcache — to be applied to a
/// live session via [`ConcretizerSession::apply_base_delta`] without tearing the
/// session down.
///
/// The delta itself is pure data: [`BaseDelta::apply`] derives the post-delta
/// repository and database from the current ones, and `apply_base_delta` re-emits the
/// base fact stream and patches the frozen base in place (see
/// [`asp::FrozenControl::patch_base`]). Pure additions (a new version, a new cached
/// binary) take the cheap semi-naive continuation path; removals trigger an id-exact
/// closure rebuild that still reuses every unaffected frozen instance. Either way,
/// subsequent solves are byte-identical to a fresh session of the post-delta universe
/// — the `base_delta_cross_check` proptests pin that contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaseDelta {
    /// Versions to declare, as `(package, version)`. Inserted into the package's
    /// newest-first declaration order (which determines version preference weights),
    /// so publishing a newer version shifts existing weights — such deltas take the
    /// rebuild path. Unknown packages and already-declared versions are ignored.
    pub add_versions: Vec<(String, String)>,
    /// Versions to yank, as `(package, version)`. Unknown entries are ignored.
    pub remove_versions: Vec<(String, String)>,
    /// Packages whose default configuration (plus dependency closure) is pushed to
    /// the buildcache, synthesized via [`spack_store::synthesize_install`] with the
    /// default [`BuildcacheConfig`]. A pure addition: takes the in-place patch path.
    pub install: Vec<String>,
    /// Packages whose installed records are removed from the buildcache (all
    /// replicas, by name).
    pub uninstall: Vec<String>,
}

impl BaseDelta {
    /// Is there nothing to apply?
    pub fn is_empty(&self) -> bool {
        self.add_versions.is_empty()
            && self.remove_versions.is_empty()
            && self.install.is_empty()
            && self.uninstall.is_empty()
    }

    /// Derive the post-delta universe: a repository with the version changes applied
    /// and a database with the install/uninstall changes applied. The inputs are
    /// untouched; the caller owns the results (and must keep them alive as long as a
    /// session patched onto them answers requests).
    pub fn apply(
        &self,
        repo: &Repository,
        database: Option<&Database>,
    ) -> (Repository, Option<Database>) {
        let mut new_repo = repo.clone();
        for (pkg, ver) in &self.remove_versions {
            if let Some(def) = new_repo.get(pkg) {
                let mut def = def.clone();
                let ver = Version::new(ver);
                def.versions.retain(|v| v.version != ver);
                new_repo.add(def);
            }
        }
        for (pkg, ver) in &self.add_versions {
            if let Some(def) = new_repo.get(pkg) {
                let mut def = def.clone();
                let ver = Version::new(ver);
                if !def.versions.iter().any(|v| v.version == ver) {
                    // Keep the newest-first declaration order real recipes use: the
                    // declaration index is the version's preference weight.
                    let at = def
                        .versions
                        .iter()
                        .position(|v| v.version < ver)
                        .unwrap_or(def.versions.len());
                    def.versions.insert(at, VersionDecl { version: ver, deprecated: false });
                }
                new_repo.add(def);
            }
        }
        let mut database = database.cloned();
        if !self.uninstall.is_empty() {
            if let Some(db) = database {
                let gone: std::collections::BTreeSet<&str> =
                    self.uninstall.iter().map(String::as_str).collect();
                database = Some(db.filter(|r| !gone.contains(r.name.as_str())));
            }
        }
        if !self.install.is_empty() {
            let pushed = synthesize_install(&new_repo, &self.install, &BuildcacheConfig::default());
            let mut db = database.unwrap_or_default();
            db.merge(&pushed);
            database = Some(db);
        }
        (new_repo, database)
    }
}

/// Aggregate accounting of a session: how often the base was ground (always exactly
/// once — asserted by tests), how many requests it served, and the amortized costs.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Number of base groundings performed: the one at session construction plus any
    /// full (non-delta) re-ground a request was observed to perform. Always exactly 1
    /// unless the multi-shot path regresses — tests assert this.
    pub base_grounds: u64,
    /// Requests answered so far (single requests and batch members alike).
    pub requests: u64,
    /// In-place base patches applied so far ([`ConcretizerSession::apply_base_delta`]):
    /// live updates the session absorbed without re-grounding the base from scratch.
    pub base_patches: u64,
    /// Order-stable digest of the base fact stream — the session's cache key.
    pub base_digest: u64,
    /// Base facts emitted (repository + site + database).
    pub base_facts: usize,
    /// Packages covered by the base problem (the whole repository).
    pub possible_packages: usize,
    /// Installed records encoded for reuse.
    pub installed: usize,
    /// Wall-clock time of base fact generation (paid once).
    pub base_setup: Duration,
    /// Wall-clock time of parsing the logic programs (paid once).
    pub base_load: Duration,
    /// Wall-clock time of the base grounding (paid once).
    pub base_ground: Duration,
    /// Possible atoms in the frozen base.
    pub base_atoms: usize,
    /// Frozen ground instances available for verbatim reuse by every request.
    pub frozen_instances: usize,
    /// Cross-request nogood store lookups that found a shelf for the request's
    /// closure digest (zero when the store is disabled).
    pub store_hits: u64,
    /// Cross-request nogood store lookups that found nothing (first request per
    /// distinct closure digest).
    pub store_misses: u64,
    /// Provenance-safe clauses transferred between requests through the store.
    pub store_transferred: u64,
}

/// A long-lived concretizer session: built once from a [`Concretizer`], answering many
/// [`ConcretizerSession::concretize`] calls. `&self` everywhere — the session is
/// shareable across threads, and [`ConcretizerSession::concretize_batch`] exploits
/// that for parallel batch concretization.
pub struct ConcretizerSession<'a> {
    repo: &'a Repository,
    frozen: asp::FrozenControl,
    base: BaseFacts,
    base_setup: Duration,
    requests: AtomicU64,
    /// In-place base patches applied ([`ConcretizerSession::apply_base_delta`]).
    base_patches: u64,
    /// Requests whose grounding was NOT an incremental delta on the frozen base.
    /// Structurally this cannot happen (every fork grounds through the base), so any
    /// nonzero value is a regression — it feeds [`SessionStats::base_grounds`], which
    /// tests assert equals exactly 1.
    full_regrounds: AtomicU64,
    /// Cross-request nogood store ([`asp::SharedClauseStore`]): provenance-safe
    /// clauses learned by one request are transferred to later requests with an
    /// identical translation (same closure digest). `None` when disabled through
    /// [`crate::Concretizer::with_nogood_store`]. Results are byte-identical either
    /// way — the store only changes how fast they are found.
    store: Option<Arc<asp::SharedClauseStore>>,
}

impl<'a> ConcretizerSession<'a> {
    /// Patch the session's frozen base **in place** so it answers subsequent requests
    /// against the post-delta universe — a new version published, a binary pushed to
    /// the buildcache — without re-parsing the programs or re-grounding the base from
    /// scratch. `repo` and `database` are the post-delta inputs (typically from
    /// [`BaseDelta::apply`]); the caller keeps them alive for the session's lifetime.
    ///
    /// The base fact stream is re-emitted for the new universe and diffed against the
    /// frozen one by [`asp::FrozenControl::patch_base`]: pure additions continue the
    /// semi-naive phase-1 fixpoint from the new facts only, removals rebuild the
    /// closure id-exactly while reusing every unaffected frozen instance. The base
    /// digest is recomputed from the new stream, so digest-keyed caches (the
    /// cross-request nogood shelves) miss naturally instead of serving stale entries.
    /// Results after a patch are byte-identical to a fresh session of the post-delta
    /// universe (proptest-pinned).
    ///
    /// Requires `&mut self`: a patch never races in-flight requests. On error the
    /// session may hold a partially patched base and must be discarded and re-frozen
    /// — the server's shard map does exactly that (evict-and-refreeze).
    pub fn apply_base_delta(
        &mut self,
        repo: &'a Repository,
        database: Option<&'a Database>,
    ) -> Result<asp::PatchStats, ConcretizeError> {
        let site = self.base.site().clone();
        let mut staged = self.frozen.request();
        let new_base = crate::FactBuilder::new(repo, &site, database).base(&mut staged)?;
        let stats = self
            .frozen
            .patch_base(staged, &new_base.partition_symbols())
            .map_err(|e| ConcretizeError::Setup(format!("base patch failed: {e}")))?;
        self.repo = repo;
        self.base = new_base;
        self.base_patches += 1;
        Ok(stats)
    }
}

/// Render a `catch_unwind` payload into the human-readable panic message (the
/// standard `&str` / `String` payloads; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".to_string()
    }
}

impl<'a> Concretizer<'a> {
    /// Build a multi-shot session: base facts for the whole repository are generated
    /// and ground exactly once; the returned session answers any number of requests
    /// (each grounding only its own spec facts) and solves batches in parallel.
    pub fn session(&self) -> Result<ConcretizerSession<'a>, ConcretizeError> {
        let setup_start = Instant::now();
        let mut ctl = asp::Control::new(self.solver.clone());
        let base = crate::FactBuilder::new(self.repo, &self.site, self.database).base(&mut ctl)?;
        let base_setup = setup_start.elapsed();
        ctl.add_program(CONCRETIZE_LP)?;
        ctl.add_program(ERROR_GUARD_LP)?;
        let frozen = ctl.freeze_base_partitioned(&base.partition_symbols())?;
        let store = self.solver.share_nogoods.then(|| Arc::new(asp::SharedClauseStore::new()));
        Ok(ConcretizerSession {
            repo: self.repo,
            frozen,
            base,
            base_setup,
            requests: AtomicU64::new(0),
            base_patches: 0,
            full_regrounds: AtomicU64::new(0),
            store,
        })
    }
}

impl ConcretizerSession<'_> {
    /// Concretize a single spec given as text.
    pub fn concretize_str(&self, text: &str) -> Result<Concretization, ConcretizeError> {
        let spec = parse_spec(text).map_err(|e| ConcretizeError::Setup(e.to_string()))?;
        self.concretize(std::slice::from_ref(&spec))
    }

    /// Concretize one request (one or more root specs) on the session: fork a control
    /// from the frozen base, add the request's spec facts, ground incrementally, and
    /// solve. Identical in outcome to
    /// [`Concretizer::concretize`](crate::Concretizer::concretize) — only the
    /// amortization differs (a request's reported `load` time is zero and its `ground`
    /// time covers the delta grounding only).
    pub fn concretize(&self, roots: &[Spec]) -> Result<Concretization, ConcretizeError> {
        self.concretize_tuned(roots, |_| {})
    }

    /// [`ConcretizerSession::concretize`] with a per-request tweak of the forked
    /// control's solver configuration — the frozen base's configuration stays
    /// untouched. This is how the durable batch runner retries a dead-lettered
    /// timeout with a diversified seed and an escalated budget without rebuilding
    /// the session.
    pub fn concretize_tuned<F>(
        &self,
        roots: &[Spec],
        tune: F,
    ) -> Result<Concretization, ConcretizeError>
    where
        F: FnOnce(&mut asp::SolverConfig),
    {
        if roots.is_empty() {
            return Err(ConcretizeError::Setup("at least one root spec is required".into()));
        }
        // Test hook for the batch panic-isolation harness: a request whose first
        // root matches $SPACK_CONCRETIZE_PANIC_ON panics from deep inside the
        // per-request work, exactly where a real solver bug would.
        if let Ok(poison) = std::env::var("SPACK_CONCRETIZE_PANIC_ON") {
            if roots.iter().any(|r| r.name.as_deref() == Some(poison.as_str())) {
                panic!("injected panic: request for '{poison}' poisoned by test hook");
            }
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        let setup_start = Instant::now();
        let mut ctl = self.frozen.request();
        tune(ctl.solver_config_mut());
        // A per-request `share_nogoods = false` (e.g. from the server's wire
        // options) opts this request out of the session store entirely: it
        // neither imports nor contributes clauses. Results are identical either
        // way; only the store counters differ.
        if ctl.solver_config_mut().share_nogoods {
            if let Some(store) = &self.store {
                ctl.set_shared_store(Arc::clone(store));
            }
        }
        let setup_info = self.base.request(self.repo, &mut ctl, roots)?;
        // Relevance restriction: this request's view of the frozen base drops every
        // package outside its dependency closure (and those packages' condition-id
        // ranges), so the delta grounding (and the solve after it) is closure-sized —
        // the same scope a one-shot solve of these roots would ground — instead of
        // universe-sized.
        let (symbols, id_ranges) = self.base.request_exclusions(self.repo, roots);
        ctl.restrict_symbols(symbols);
        ctl.restrict_int_ranges(id_ranges);
        let setup_time = setup_start.elapsed();
        let result = solve_prepared(self.repo, roots, ctl, setup_info, setup_time);
        // The "base ground exactly once" accounting is derived from what actually
        // happened: a request whose grounding was not an incremental delta would be
        // a silent re-ground of the universe, and must show up in the stats —
        // on the unsatisfiable path too (DiagnosticsStats mirrors the delta flag).
        let was_delta = match &result {
            Ok(c) => c.stats.ground.delta,
            Err(ConcretizeError::Unsatisfiable { stats, .. }) => stats.ground_delta,
            Err(ConcretizeError::Budget { stats, .. }) => stats.ground.delta,
            Err(_) => true, // failed before grounding: nothing was re-ground
        };
        if !was_delta {
            self.full_regrounds.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Concretize a batch of independent requests in parallel, one result per request
    /// (in input order). Each request solves on its own fork of the shared frozen
    /// base, so failures (including unsatisfiable requests, which carry their full
    /// diagnostics) are per-request and never poison the batch. Panics are isolated
    /// too: a request that panics becomes [`ConcretizeError::Internal`] for that item
    /// instead of killing the batch thread pool.
    pub fn concretize_batch(
        &self,
        requests: &[Vec<Spec>],
    ) -> Vec<Result<Concretization, ConcretizeError>> {
        requests
            .par_iter()
            .map(|roots| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.concretize(roots)))
                    .unwrap_or_else(|payload| {
                        Err(ConcretizeError::Internal(panic_message(payload)))
                    })
            })
            .collect()
    }

    /// The digest of the base fact stream — the session's cache key.
    pub fn base_digest(&self) -> u64 {
        self.base.digest()
    }

    /// Session accounting: base ground exactly once, requests served, amortized costs.
    pub fn stats(&self) -> SessionStats {
        let ground = self.frozen.base_stats();
        SessionStats {
            // One base grounding at construction, plus any full re-ground a request
            // was observed to perform (always 0 unless the multi-shot path regresses).
            base_grounds: 1 + self.full_regrounds.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            base_patches: self.base_patches,
            base_digest: self.base.digest(),
            base_facts: self.base.fact_count(),
            possible_packages: self.base.possible_packages(),
            installed: self.base.installed(),
            base_setup: self.base_setup,
            base_load: self.frozen.load_time(),
            base_ground: ground.duration,
            base_atoms: ground.atoms,
            frozen_instances: self.frozen.frozen_instances(),
            store_hits: self.store.as_ref().map_or(0, |s| s.hits()),
            store_misses: self.store.as_ref().map_or(0, |s| s.misses()),
            store_transferred: self.store.as_ref().map_or(0, |s| s.transferred()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcretizeError, SiteConfig};
    use spack_repo::builtin_repo;

    fn render(result: &Result<Concretization, ConcretizeError>) -> String {
        match result {
            Ok(c) => format!("{}|cost={:?}", c.spec, c.cost),
            Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
                format!("UNSAT|{:?}", diagnostics)
            }
            Err(e) => format!("ERR|{e}"),
        }
    }

    #[test]
    fn session_matches_one_shot_solves() {
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let session = concretizer.session().unwrap();
        for spec in ["zlib", "zlib@1.2.8", "hdf5", "example~bzip", "zlib@9.9"] {
            let one = render(&concretizer.concretize_str(spec));
            let multi = render(&session.concretize_str(spec));
            assert_eq!(one, multi, "spec {spec}: session must match one-shot");
        }
        let stats = session.stats();
        assert_eq!(stats.base_grounds, 1);
        assert_eq!(stats.requests, 5);
        assert!(stats.frozen_instances > 0);
    }

    #[test]
    fn batch_solves_in_parallel_and_preserves_order() {
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let session = concretizer.session().unwrap();
        let requests: Vec<Vec<spack_spec::Spec>> =
            ["zlib", "zlib@9.9", "hdf5"].iter().map(|s| vec![parse_spec(s).unwrap()]).collect();
        let results = session.concretize_batch(&requests);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ConcretizeError::Unsatisfiable { .. })));
        assert!(results[2].is_ok());
        assert_eq!(session.stats().requests, 3);
    }

    #[test]
    fn colliding_package_names_are_never_excluded() {
        // Package "tcl" shares its name with a variant of "app". A request for
        // "app" has tcl outside its closure — but excluding the symbol "tcl" would
        // also delete app's variant("app","tcl") facts. The collision guard must
        // keep it: session and one-shot results stay identical, variant included.
        use spack_repo::{PackageBuilder, Repository};
        let mut repo = Repository::new();
        repo.add(PackageBuilder::new("tcl").version("8.6").build());
        repo.add(
            PackageBuilder::new("app")
                .version("1.0")
                .variant_bool("tcl", true, "tcl bindings (name collides with a package)")
                .build(),
        );
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::minimal());
        let session = concretizer.session().unwrap();
        for spec in ["app", "app+tcl", "app~tcl"] {
            let one = render(&concretizer.concretize_str(spec));
            let ses = render(&session.concretize_str(spec));
            assert_eq!(one, ses, "spec {spec}: collision guard must keep variant facts");
            assert!(ses.contains("tcl"), "spec {spec}: the variant must be in the DAG: {ses}");
        }
    }

    #[test]
    fn base_delta_version_publish_patches_in_place() {
        // Publish zlib@2.0 into a live session: post-patch solves must be identical
        // to a fresh session of the post-delta repository, without a second base
        // ground. A newer version shifts preference weights, so this takes the
        // rebuild path — still a patch, not a new session.
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let mut session = concretizer.session().unwrap();
        let before = render(&session.concretize_str("zlib"));
        assert!(matches!(
            session.concretize_str("zlib@2.0"),
            Err(ConcretizeError::Unsatisfiable { .. })
        ));

        let delta = BaseDelta {
            add_versions: vec![("zlib".to_string(), "2.0".to_string())],
            ..Default::default()
        };
        let (new_repo, _) = delta.apply(&repo, None);
        let stats = session.apply_base_delta(&new_repo, None).unwrap();
        assert!(stats.added_facts > 0);

        let fresh_concretizer = Concretizer::new(&new_repo).with_site(SiteConfig::quartz());
        let fresh = fresh_concretizer.session().unwrap();
        for spec in ["zlib", "zlib@2.0", "zlib@1.2.8", "hdf5", "example~bzip"] {
            let patched = render(&session.concretize_str(spec));
            let scratch = render(&fresh.concretize_str(spec));
            assert_eq!(patched, scratch, "spec {spec}: patched session must match fresh");
        }
        assert_ne!(before, render(&session.concretize_str("zlib")), "zlib must pick 2.0 now");
        assert_eq!(session.base_digest(), fresh.base_digest(), "digests must converge");
        let stats = session.stats();
        assert_eq!(stats.base_grounds, 1, "a patch must not re-ground the base");
        assert_eq!(stats.base_patches, 1);
    }

    #[test]
    fn base_delta_install_takes_the_addition_path() {
        // Pushing binaries into an empty buildcache only adds facts: the patch must
        // take the cheap in-place continuation path (no rebuild), and post-patch
        // solves must reuse the new records exactly like a fresh session would.
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let mut session = concretizer.session().unwrap();
        assert_eq!(session.stats().installed, 0);

        let delta = BaseDelta { install: vec!["zlib".to_string()], ..Default::default() };
        let (new_repo, new_db) = delta.apply(&repo, None);
        let db = new_db.expect("install must create a database");
        let stats = session.apply_base_delta(&new_repo, Some(&db)).unwrap();
        assert!(!stats.rebuilt, "a pure install must patch in place: {stats:?}");
        assert!(session.stats().installed > 0);

        let fresh_concretizer =
            Concretizer::new(&new_repo).with_site(SiteConfig::quartz()).with_database(&db);
        let fresh = fresh_concretizer.session().unwrap();
        for spec in ["zlib", "hdf5", "zlib@9.9"] {
            let patched = render(&session.concretize_str(spec));
            let scratch = render(&fresh.concretize_str(spec));
            assert_eq!(patched, scratch, "spec {spec}: patched session must match fresh");
        }
        assert_eq!(session.base_digest(), fresh.base_digest());
        assert_eq!(session.stats().base_grounds, 1);
    }

    #[test]
    fn base_delta_remove_then_re_add_round_trips() {
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let mut session = concretizer.session().unwrap();
        let original_digest = session.base_digest();
        let original = render(&session.concretize_str("zlib"));

        // Yank the version zlib would have picked; solves must fall back.
        let solved = session.concretize_str("zlib").unwrap();
        let picked = solved
            .spec
            .nodes
            .iter()
            .find(|n| n.name == "zlib")
            .expect("zlib must be in its own DAG")
            .version
            .to_string();
        let yank = BaseDelta {
            remove_versions: vec![("zlib".to_string(), picked.clone())],
            ..Default::default()
        };
        let (yanked_repo, _) = yank.apply(&repo, None);
        let stats = session.apply_base_delta(&yanked_repo, None).unwrap();
        assert!(stats.rebuilt, "a removal must rebuild: {stats:?}");
        let after = render(&session.concretize_str("zlib"));
        assert_ne!(original, after, "the yanked version must no longer be picked");

        // Re-publish it: digest and answers must round-trip back exactly.
        let readd =
            BaseDelta { add_versions: vec![("zlib".to_string(), picked)], ..Default::default() };
        let (restored_repo, _) = readd.apply(&yanked_repo, None);
        session.apply_base_delta(&restored_repo, None).unwrap();
        assert_eq!(session.base_digest(), original_digest, "digest must round-trip");
        assert_eq!(render(&session.concretize_str("zlib")), original);
        assert_eq!(session.stats().base_patches, 2);
        assert_eq!(session.stats().base_grounds, 1);
    }

    #[test]
    fn session_grounds_base_exactly_once_for_many_requests() {
        // Acceptance criterion: a session answering N >= 8 requests grounds the base
        // program exactly once, asserted via stats counters — every request grounding
        // is a delta that reuses frozen base instances.
        let repo = builtin_repo();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let session = concretizer.session().unwrap();
        let specs =
            ["zlib", "bzip2", "hdf5", "example", "mpileaks", "zlib@1.2.8", "example~bzip", "hdf5"];
        assert!(specs.len() >= 8);
        for spec in specs {
            let result = session.concretize_str(spec).unwrap();
            assert!(result.stats.ground.delta, "{spec}: request must ground incrementally");
            assert!(result.stats.ground.reused_rules > 0, "{spec}: must reuse base instances");
            assert_eq!(result.timings.load, Duration::ZERO, "{spec}: parsing is amortized");
        }
        let stats = session.stats();
        assert_eq!(stats.base_grounds, 1, "the base must have been ground exactly once");
        assert_eq!(stats.requests, specs.len() as u64);
    }
}

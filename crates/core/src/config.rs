//! Site configuration: the compilers, operating systems, platform, and targets available
//! on the machine the concretizer is solving for.
//!
//! In Spack this information comes from `compilers.yaml`, `packages.yaml`, and archspec
//! detection; here it is an explicit value so tests and benchmarks can model the two
//! evaluation machines of the paper (Quartz: Intel/haswell-era x86_64; Lassen: Power9).

use spack_spec::{Compiler, OperatingSystem, Platform, TargetCatalog, Version};

/// The site configuration used for a concretization.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Available compilers, most preferred first.
    pub compilers: Vec<Compiler>,
    /// Available operating systems, most preferred first (the first is the frontend OS).
    pub operating_systems: Vec<OperatingSystem>,
    /// The platform.
    pub platform: Platform,
    /// The microarchitecture family of this machine (e.g. `x86_64`, `ppc64le`).
    pub target_family: String,
    /// The full target catalog (used for weights and compiler support).
    pub targets: TargetCatalog,
}

impl Default for SiteConfig {
    fn default() -> Self {
        Self::quartz()
    }
}

impl SiteConfig {
    /// A configuration modelled after Quartz (LLNL): Intel x86_64 nodes, TOSS/RHEL-family
    /// OS, a recent and an older gcc plus clang and a vendor compiler.
    pub fn quartz() -> Self {
        SiteConfig {
            compilers: vec![
                Compiler::new("gcc", "11.2.0"),
                Compiler::new("gcc", "8.3.1"),
                Compiler::new("gcc", "4.8.5"),
                Compiler::new("clang", "14.0.6"),
                Compiler::new("intel", "2021.6.0"),
            ],
            operating_systems: vec![OperatingSystem::new("centos8"), OperatingSystem::new("rhel7")],
            platform: Platform::Linux,
            target_family: "x86_64".to_string(),
            targets: TargetCatalog::builtin(),
        }
    }

    /// A configuration modelled after Lassen (LLNL): IBM Power9 nodes.
    pub fn lassen() -> Self {
        SiteConfig {
            compilers: vec![
                Compiler::new("gcc", "8.3.1"),
                Compiler::new("clang", "13.0.1"),
                Compiler::new("xl", "16.1.1"),
            ],
            operating_systems: vec![OperatingSystem::new("rhel7")],
            platform: Platform::Linux,
            target_family: "ppc64le".to_string(),
            targets: TargetCatalog::builtin(),
        }
    }

    /// A minimal configuration (one compiler, one OS, generic target) for fast tests.
    pub fn minimal() -> Self {
        SiteConfig {
            compilers: vec![Compiler::new("gcc", "11.2.0")],
            operating_systems: vec![OperatingSystem::new("centos8")],
            platform: Platform::Linux,
            target_family: "x86_64".to_string(),
            targets: TargetCatalog::builtin(),
        }
    }

    /// The most preferred compiler.
    pub fn default_compiler(&self) -> &Compiler {
        &self.compilers[0]
    }

    /// The most preferred operating system.
    pub fn default_os(&self) -> &OperatingSystem {
        &self.operating_systems[0]
    }

    /// The targets available on this machine (its family), best first.
    pub fn available_targets(&self) -> Vec<&spack_spec::target::TargetInfo> {
        self.targets.family(&self.target_family)
    }

    /// The best target a given compiler can generate code for on this machine.
    pub fn best_target_for(&self, compiler: &Compiler) -> Option<String> {
        self.available_targets()
            .into_iter()
            .find(|t| {
                self.targets.compiler_supports(&compiler.name, &compiler.version, t.target.name())
            })
            .map(|t| t.target.name().to_string())
    }

    /// The compiler identifier string used in ASP facts (`gcc@11.2.0`).
    pub fn compiler_id(compiler: &Compiler) -> String {
        format!("{}@{}", compiler.name, compiler.version)
    }

    /// Parse a compiler identifier back into a [`Compiler`].
    pub fn parse_compiler_id(id: &str) -> Compiler {
        match id.split_once('@') {
            Some((name, version)) => {
                Compiler { name: name.to_string(), version: Version::new(version) }
            }
            None => Compiler { name: id.to_string(), version: Version::new("0") },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartz_and_lassen_have_expected_families() {
        assert_eq!(SiteConfig::quartz().target_family, "x86_64");
        assert_eq!(SiteConfig::lassen().target_family, "ppc64le");
        assert_eq!(SiteConfig::quartz().default_os().name(), "centos8");
        assert_eq!(SiteConfig::lassen().default_os().name(), "rhel7");
    }

    #[test]
    fn best_target_depends_on_compiler() {
        let site = SiteConfig::quartz();
        let new_gcc = Compiler::new("gcc", "11.2.0");
        let old_gcc = Compiler::new("gcc", "4.8.5");
        let best_new = site.best_target_for(&new_gcc).unwrap();
        let best_old = site.best_target_for(&old_gcc).unwrap();
        assert_eq!(best_new, "icelake");
        // Old gcc cannot emit skylake or newer (the paper's example); it falls back.
        assert_ne!(best_old, "icelake");
        let w_new = site.targets.weight(&best_new).unwrap();
        let w_old = site.targets.weight(&best_old).unwrap();
        assert!(w_new < w_old);
    }

    #[test]
    fn compiler_id_round_trip() {
        let c = Compiler::new("gcc", "11.2.0");
        let id = SiteConfig::compiler_id(&c);
        assert_eq!(id, "gcc@11.2.0");
        assert_eq!(SiteConfig::parse_compiler_id(&id), c);
    }

    #[test]
    fn lassen_targets_are_power() {
        let site = SiteConfig::lassen();
        let targets = site.available_targets();
        assert!(targets.iter().any(|t| t.target.name() == "power9le"));
        assert!(targets.iter().all(|t| t.family == "ppc64le"));
    }
}

//! The versioned wire protocol of `spack-solved`: newline-delimited JSON, one
//! request or response per line.
//!
//! Every message carries a `"v"` field (currently [`WIRE_VERSION`]); a missing
//! `"v"` means version 1, any other version is rejected with a parse-error
//! response. Parsing is **unknown-field tolerant** by construction — messages are
//! read through a full (hand-rolled — the workspace deliberately has no serde)
//! JSON parser and only the known fields are extracted, so a newer client can add
//! fields without breaking an older server and vice versa.
//!
//! # Requests
//!
//! ```json
//! {"v": 1, "id": "a1", "specs": ["hdf5 ^mpich"], "options": {"reuse": true, "deadline_ms": 5000}}
//! {"v": 1, "id": "u1", "cmd": "update", "add_versions": [{"package": "zlib", "version": "2.0"}], "install": ["hdf5"]}
//! {"v": 1, "id": "s1", "cmd": "stats"}
//! {"v": 1, "id": "q", "cmd": "shutdown"}
//! ```
//!
//! An `update` request carries a [`crate::BaseDelta`] — versions published or
//! yanked, binaries pushed to or removed from the buildcache — and patches every
//! built shard session **in place** between in-flight requests (see
//! [`crate::ConcretizerSession::apply_base_delta`]); shards that cannot absorb
//! the delta incrementally are evicted and re-frozen, with the reason reported in
//! `stats` rather than failing the update.
//!
//! [`RequestOptions`] is the wire form of [`crate::SolveOptions`]: live references
//! cannot cross a socket, so the site travels by preset name and the database by
//! the `reuse` flag; every field is optional and defaults to the server's
//! configuration.
//!
//! # Responses
//!
//! One [`SolveResponse`] line per request, tagged by the request's `id`, with a
//! [`SolveStatus`] that is exactly [`crate::ResultClass`] — the same worst-class
//! taxonomy the batch exit code and DLQ records use. `spack-solve batch --json`
//! emits the identical rendering, which is what makes server responses
//! byte-comparable against one-shot solves.

use asp::{SolveBudget, SolverConfig};

use crate::durable::{json_escape, json_unescape};
use crate::{Concretization, ConcretizeError, Diagnostic, ResultClass, Severity};

/// The wire protocol version stamped into (and required of) every message.
pub const WIRE_VERSION: u64 = 1;

/// The `status` field of a [`SolveResponse`]: exactly the worst-class result
/// taxonomy of [`crate::ResultClass`] (`ok`, `unsat`, `parse`, `budget`,
/// `internal`), shared with the batch exit-code contract and DLQ records.
pub type SolveStatus = ResultClass;

// ---------------------------------------------------------------------------
// A minimal JSON value parser (tolerant reader side of the hand-rolled codec).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Crate-internal: the wire types below are the public API.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (i128 covers the full u64 and i64 wire ranges).
    Int(i128),
    /// A non-integer number; carried only for tolerance, never produced by us.
    Float(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document (and nothing else) from `text`.
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected character '{}' at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if float {
            text.parse().map(Json::Float).map_err(|_| format!("invalid number '{text}'"))
        } else {
            text.parse().map(Json::Int).map_err(|_| format!("invalid number '{text}'"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut escaped = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                self.pos += 1;
                return json_unescape(raw)
                    .ok_or_else(|| format!("malformed escape in string at offset {start}"));
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One parsed client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Concretize the given specs (`cmd` absent or `"solve"`).
    Solve(SolveRequest),
    /// Patch the base universe in place across all built shards (`"cmd": "update"`).
    Update(UpdateRequest),
    /// Report per-shard session statistics and queue counters (`"cmd": "stats"`).
    Stats {
        /// The request id the response will be tagged with.
        id: String,
    },
    /// Stop admitting work, drain in-flight jobs, and exit (`"cmd": "shutdown"`).
    Shutdown {
        /// The request id the acknowledgement will be tagged with.
        id: String,
    },
}

/// An update request: a [`crate::BaseDelta`] describing repository and
/// buildcache churn, applied to every built shard without tearing sessions
/// down. Wire fields (all optional, top-level next to `"cmd": "update"`):
/// `add_versions` / `remove_versions` as arrays of `{"package", "version"}`
/// objects, `install` / `uninstall` as arrays of package names.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// Client-chosen id echoed into the response.
    pub id: String,
    /// The base churn to apply.
    pub delta: crate::BaseDelta,
}

/// A solve request: one or more spec strings plus per-request options.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen id echoed into the response (responses stream out of order).
    pub id: String,
    /// The abstract specs to concretize into a single DAG (parsed server-side).
    pub specs: Vec<String>,
    /// Per-request options; unset fields fall back to the server's defaults.
    pub options: RequestOptions,
}

/// The wire form of [`crate::SolveOptions`], carried per request. Every field is
/// optional: `None` means "use the server's default". The site travels by preset
/// name (`"quartz"`, `"lassen"`, `"minimal"`) and the buildcache by the `reuse`
/// flag — live references cannot cross a socket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Site preset name; selects the shard together with `reuse`.
    pub site: Option<String>,
    /// Reuse the server's buildcache; selects the shard together with `site`.
    pub reuse: Option<bool>,
    /// Wall deadline of the solve budget, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Conflict limit of the solve budget.
    pub conflict_limit: Option<u64>,
    /// Portfolio width (`0`/`1` = serial); results are byte-identical for any value.
    pub portfolio: Option<usize>,
    /// Attach the shard's cross-request nogood store to this request (default on);
    /// results are byte-identical either way.
    pub nogood_store: Option<bool>,
    /// Solver seed for randomized tie-breaking.
    pub seed: Option<u64>,
    /// Budget-exhaustion retries (diversified seed, doubled budget per attempt).
    pub retries: Option<u32>,
}

impl RequestOptions {
    pub(crate) fn from_json(json: &Json) -> Result<Self, String> {
        let mut options = RequestOptions {
            site: json.get("site").and_then(Json::as_str).map(str::to_string),
            ..RequestOptions::default()
        };
        if let Some(v) = json.get("reuse") {
            options.reuse = Some(v.as_bool().ok_or("'reuse' must be a boolean")?);
        }
        if let Some(v) = json.get("deadline_ms") {
            options.deadline_ms = Some(v.as_u64().ok_or("'deadline_ms' must be an integer")?);
        }
        if let Some(v) = json.get("conflict_limit") {
            options.conflict_limit = Some(v.as_u64().ok_or("'conflict_limit' must be an integer")?);
        }
        if let Some(v) = json.get("portfolio") {
            options.portfolio = Some(v.as_u64().ok_or("'portfolio' must be an integer")? as usize);
        }
        if let Some(v) = json.get("nogood_store") {
            options.nogood_store = Some(v.as_bool().ok_or("'nogood_store' must be a boolean")?);
        }
        if let Some(v) = json.get("seed") {
            options.seed = Some(v.as_u64().ok_or("'seed' must be an integer")?);
        }
        if let Some(v) = json.get("retries") {
            options.retries = Some(v.as_u64().ok_or("'retries' must be an integer")? as u32);
        }
        Ok(options)
    }

    /// Parse the options object from its JSON text (the inverse of [`render`]).
    ///
    /// [`render`]: RequestOptions::render
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&parse_json(text)?)
    }

    /// Render as a JSON object containing only the set fields.
    pub fn render(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        if let Some(site) = &self.site {
            fields.push(format!("\"site\": \"{}\"", json_escape(site)));
        }
        if let Some(reuse) = self.reuse {
            fields.push(format!("\"reuse\": {reuse}"));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(format!("\"deadline_ms\": {ms}"));
        }
        if let Some(n) = self.conflict_limit {
            fields.push(format!("\"conflict_limit\": {n}"));
        }
        if let Some(k) = self.portfolio {
            fields.push(format!("\"portfolio\": {k}"));
        }
        if let Some(on) = self.nogood_store {
            fields.push(format!("\"nogood_store\": {on}"));
        }
        if let Some(seed) = self.seed {
            fields.push(format!("\"seed\": {seed}"));
        }
        if let Some(n) = self.retries {
            fields.push(format!("\"retries\": {n}"));
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// The per-request budget, when any half is set.
    pub fn budget(&self) -> Option<SolveBudget> {
        let budget = SolveBudget {
            wall_deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            conflict_limit: self.conflict_limit,
        };
        budget.is_bounded().then_some(budget)
    }

    /// Fold the set solver-level fields onto a base [`SolverConfig`] — exactly
    /// what the server does per request on the shard session's forked control.
    pub fn apply(&self, cfg: &mut SolverConfig) {
        if let Some(budget) = self.budget() {
            cfg.budget = Some(budget);
        }
        if let Some(k) = self.portfolio {
            cfg.portfolio = k;
        }
        if let Some(on) = self.nogood_store {
            cfg.share_nogoods = on;
        }
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
    }
}

/// Parse one request line. A missing `"v"` means version 1; an unsupported
/// version, malformed JSON, an unknown `cmd`, or a solve without specs is an
/// `Err` — the server answers those with a `parse`-status response and keeps the
/// connection alive.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = parse_json(line).map_err(|e| format!("malformed request: {e}"))?;
    if !matches!(json, Json::Obj(_)) {
        return Err("malformed request: expected a JSON object".to_string());
    }
    match json.get("v") {
        None => {}
        Some(v) if v.as_u64() == Some(WIRE_VERSION) => {}
        Some(v) => return Err(format!("unsupported wire version {v:?} (expected {WIRE_VERSION})")),
    }
    let id = json.get("id").and_then(Json::as_str).unwrap_or("").to_string();
    match json.get("cmd").and_then(Json::as_str) {
        None | Some("solve") => {
            let specs: Vec<String> = json
                .get("specs")
                .and_then(Json::as_array)
                .map(|items| items.iter().filter_map(|s| s.as_str().map(str::to_string)).collect())
                .unwrap_or_default();
            if specs.is_empty() {
                return Err("a solve request needs a non-empty 'specs' array".to_string());
            }
            let options = match json.get("options") {
                Some(obj) => RequestOptions::from_json(obj)?,
                None => RequestOptions::default(),
            };
            Ok(Request::Solve(SolveRequest { id, specs, options }))
        }
        Some("update") => {
            let mut delta = crate::BaseDelta::default();
            for (field, slot) in [
                ("add_versions", &mut delta.add_versions),
                ("remove_versions", &mut delta.remove_versions),
            ] {
                if let Some(items) = json.get(field) {
                    let items =
                        items.as_array().ok_or_else(|| format!("'{field}' must be an array"))?;
                    for item in items {
                        let package =
                            item.get("package").and_then(Json::as_str).ok_or_else(|| {
                                format!("each '{field}' entry needs a 'package' string")
                            })?;
                        let version =
                            item.get("version").and_then(Json::as_str).ok_or_else(|| {
                                format!("each '{field}' entry needs a 'version' string")
                            })?;
                        slot.push((package.to_string(), version.to_string()));
                    }
                }
            }
            for (field, slot) in
                [("install", &mut delta.install), ("uninstall", &mut delta.uninstall)]
            {
                if let Some(items) = json.get(field) {
                    let items =
                        items.as_array().ok_or_else(|| format!("'{field}' must be an array"))?;
                    for item in items {
                        let name = item
                            .as_str()
                            .ok_or_else(|| format!("'{field}' entries must be strings"))?;
                        slot.push(name.to_string());
                    }
                }
            }
            Ok(Request::Update(UpdateRequest { id, delta }))
        }
        Some("stats") => Ok(Request::Stats { id }),
        Some("shutdown") => Ok(Request::Shutdown { id }),
        Some(other) => Err(format!("unknown cmd '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The payload of a successful solve: the concrete DAG and its accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveResult {
    /// Number of packages in the concrete DAG.
    pub packages: usize,
    /// Packages reused from the buildcache, as `(package, hash)`.
    pub reused: Vec<(String, String)>,
    /// Packages that must be built from source.
    pub built: Vec<String>,
    /// The objective vector `(priority, value)`, highest priority first.
    pub cost: Vec<(i64, i64)>,
    /// Was the DAG proven optimal? (`false` only for a budget path's partial.)
    pub optimal: bool,
    /// The rendered concrete DAG, exactly as `spack-solve spec` prints it.
    pub dag: String,
}

impl SolveResult {
    fn of(c: &Concretization) -> Self {
        SolveResult {
            packages: c.spec.len(),
            reused: c.reused.clone(),
            built: c.built.clone(),
            cost: c.cost.clone(),
            optimal: c.optimal,
            dag: c.spec.to_string(),
        }
    }
}

/// One response line: the outcome of a single request, tagged by its id.
///
/// The rendering is deterministic (fixed field order, no timestamps or wall
/// times), which is what lets CI compare a server's out-of-order response stream
/// against `spack-solve batch --json` byte-for-byte after sorting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveResponse {
    /// The request id this response answers.
    pub id: String,
    /// The request's spec text, echoed back (multiple specs joined by a space).
    pub spec: String,
    /// The worst-class outcome — shared taxonomy with batch exit codes and DLQ.
    pub status: SolveStatus,
    /// Budget retries consumed.
    pub retries: u32,
    /// 1-based input line number; only set by the batch runner's DLQ records.
    pub lineno: Option<usize>,
    /// Human-readable failure summary, absent on `ok`.
    pub message: Option<String>,
    /// Why-not diagnostics (unsat and budget statuses; empty otherwise).
    pub diagnostics: Vec<Diagnostic>,
    /// The concrete DAG and its accounting, present only on `ok`.
    pub result: Option<SolveResult>,
}

impl SolveResponse {
    /// Classify and package a concretization result, using
    /// [`ConcretizeError::class`] as the single source of truth for `status`.
    pub fn from_result(
        id: &str,
        spec: &str,
        result: &Result<Concretization, ConcretizeError>,
        retries: u32,
    ) -> Self {
        let mut response = SolveResponse {
            id: id.to_string(),
            spec: spec.to_string(),
            status: ResultClass::of(result),
            retries,
            lineno: None,
            message: None,
            diagnostics: Vec::new(),
            result: None,
        };
        match result {
            Ok(c) => response.result = Some(SolveResult::of(c)),
            Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
                response.message = Some("no valid configuration exists".to_string());
                response.diagnostics = diagnostics.clone();
            }
            Err(ConcretizeError::Budget { partial_best, .. }) => {
                let diag = crate::diagnose::budget_diagnostic(
                    spec,
                    partial_best.as_ref().map(|c| c.spec.len()),
                );
                response.message = Some(diag.message.clone());
                response.diagnostics = vec![diag];
            }
            Err(e) => response.message = Some(e.to_string()),
        }
        response
    }

    /// A bare failure response (parse errors, rejected requests): no result, no
    /// diagnostics, just the status and message.
    pub fn failure(id: &str, spec: &str, status: SolveStatus, message: &str) -> Self {
        SolveResponse {
            id: id.to_string(),
            spec: spec.to_string(),
            status,
            retries: 0,
            lineno: None,
            message: Some(message.to_string()),
            diagnostics: Vec::new(),
            result: None,
        }
    }

    /// Render as a single JSON line (no trailing newline), deterministic field
    /// order: `v`, `id`, `spec`, `status`, `retries`, \[`lineno`\], \[`message`\],
    /// `diagnostics`, \[`result`\].
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": \"{}\", \"spec\": \"{}\", \"status\": \"{}\", \
             \"retries\": {}",
            json_escape(&self.id),
            json_escape(&self.spec),
            self.status.as_str(),
            self.retries,
        );
        if let Some(lineno) = self.lineno {
            out.push_str(&format!(", \"lineno\": {lineno}"));
        }
        if let Some(message) = &self.message {
            out.push_str(&format!(", \"message\": \"{}\"", json_escape(message)));
        }
        let diags: Vec<String> = self.diagnostics.iter().map(render_diagnostic).collect();
        out.push_str(&format!(", \"diagnostics\": [{}]", diags.join(", ")));
        if let Some(result) = &self.result {
            let reused: Vec<String> = result
                .reused
                .iter()
                .map(|(p, h)| format!("[\"{}\", \"{}\"]", json_escape(p), json_escape(h)))
                .collect();
            let built: Vec<String> =
                result.built.iter().map(|p| format!("\"{}\"", json_escape(p))).collect();
            let cost: Vec<String> =
                result.cost.iter().map(|(p, v)| format!("[{p}, {v}]")).collect();
            out.push_str(&format!(
                ", \"result\": {{\"packages\": {}, \"reused\": [{}], \"built\": [{}], \
                 \"cost\": [{}], \"optimal\": {}, \"dag\": \"{}\"}}",
                result.packages,
                reused.join(", "),
                built.join(", "),
                cost.join(", "),
                result.optimal,
                json_escape(&result.dag),
            ));
        }
        out.push('}');
        out
    }

    /// Parse a response line rendered by [`SolveResponse::render`] (tolerant of
    /// unknown fields, like all wire parsing).
    pub fn parse(line: &str) -> Result<Self, String> {
        let json = parse_json(line).map_err(|e| format!("malformed response: {e}"))?;
        match json.get("v") {
            None => {}
            Some(v) if v.as_u64() == Some(WIRE_VERSION) => {}
            Some(v) => {
                return Err(format!("unsupported wire version {v:?} (expected {WIRE_VERSION})"))
            }
        }
        let status_text = json.get("status").and_then(Json::as_str).ok_or("missing 'status'")?;
        let status = ResultClass::from_wire(status_text)
            .ok_or_else(|| format!("unknown status '{status_text}'"))?;
        let diagnostics = match json.get("diagnostics").and_then(Json::as_array) {
            Some(items) => items.iter().map(parse_diagnostic).collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let result = match json.get("result") {
            Some(obj) => Some(parse_result(obj)?),
            None => None,
        };
        Ok(SolveResponse {
            id: json.get("id").and_then(Json::as_str).unwrap_or("").to_string(),
            spec: json.get("spec").and_then(Json::as_str).unwrap_or("").to_string(),
            status,
            retries: json.get("retries").and_then(Json::as_u64).unwrap_or(0) as u32,
            lineno: json.get("lineno").and_then(Json::as_u64).map(|n| n as usize),
            message: json.get("message").and_then(Json::as_str).map(str::to_string),
            diagnostics,
            result,
        })
    }
}

fn render_diagnostic(d: &Diagnostic) -> String {
    let severity = match d.severity {
        Severity::Error => "error",
        Severity::Note => "note",
    };
    let package = match &d.package {
        Some(p) => format!("\"{}\"", json_escape(p)),
        None => "null".to_string(),
    };
    let provenance: Vec<String> =
        d.provenance.iter().map(|p| format!("\"{}\"", json_escape(p))).collect();
    format!(
        "{{\"severity\": \"{severity}\", \"priority\": {}, \"code\": \"{}\", \
         \"message\": \"{}\", \"package\": {package}, \"provenance\": [{}]}}",
        d.priority,
        json_escape(&d.code),
        json_escape(&d.message),
        provenance.join(", ")
    )
}

fn parse_diagnostic(json: &Json) -> Result<Diagnostic, String> {
    let severity = match json.get("severity").and_then(Json::as_str) {
        Some("note") => Severity::Note,
        _ => Severity::Error,
    };
    Ok(Diagnostic {
        severity,
        priority: json.get("priority").and_then(Json::as_i64).unwrap_or(0),
        code: json.get("code").and_then(Json::as_str).unwrap_or("").to_string(),
        message: json.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
        package: json.get("package").and_then(Json::as_str).map(str::to_string),
        provenance: json
            .get("provenance")
            .and_then(Json::as_array)
            .map(|items| items.iter().filter_map(|p| p.as_str().map(str::to_string)).collect())
            .unwrap_or_default(),
    })
}

fn parse_result(json: &Json) -> Result<SolveResult, String> {
    let reused = json
        .get("reused")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_str()?.to_string()))
                })
                .collect()
        })
        .unwrap_or_default();
    let built = json
        .get("built")
        .and_then(Json::as_array)
        .map(|items| items.iter().filter_map(|p| p.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let cost = json
        .get("cost")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_i64()?, pair.get(1)?.as_i64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(SolveResult {
        packages: json.get("packages").and_then(Json::as_u64).unwrap_or(0) as usize,
        reused,
        built,
        cost,
        optimal: json.get("optimal").and_then(Json::as_bool).unwrap_or(true),
        dag: json.get("dag").and_then(Json::as_str).unwrap_or("").to_string(),
    })
}

// ---------------------------------------------------------------------------
// Stats responses
// ---------------------------------------------------------------------------

/// Render a stats response: queue counters plus one entry per shard, shards in
/// deterministic `(site, reuse)` order.
pub fn render_stats_response(id: &str, stats: &super::ServerStats) -> String {
    let shards: Vec<String> = stats
        .shards
        .iter()
        .map(|s| {
            let mut entry = format!(
                "{{\"site\": \"{}\", \"reuse\": {}, \"digest\": \"{:016x}\", \
                 \"requests\": {}, \"base_grounds\": {}, \"frozen_instances\": {}, \
                 \"store_hits\": {}, \"store_misses\": {}, \"store_transferred\": {}, \
                 \"patches\": {}, \"refreezes\": {}, \"evictions\": {}",
                json_escape(&s.site),
                s.reuse,
                s.digest,
                s.requests,
                s.base_grounds,
                s.frozen_instances,
                s.store_hits,
                s.store_misses,
                s.store_transferred,
                s.patches,
                s.refreezes,
                s.evictions,
            );
            if let Some(reason) = &s.last_refreeze {
                entry.push_str(&format!(", \"last_refreeze\": \"{}\"", json_escape(reason)));
            }
            entry.push('}');
            entry
        })
        .collect();
    format!(
        "{{\"v\": {WIRE_VERSION}, \"id\": \"{}\", \"status\": \"ok\", \"stats\": \
         {{\"workers\": {}, \"queue_depth\": {}, \"jobs_received\": {}, \
         \"jobs_completed\": {}, \"shards\": [{}]}}}}",
        json_escape(id),
        stats.workers,
        stats.queue_depth,
        stats.jobs_received,
        stats.jobs_completed,
        shards.join(", "),
    )
}

/// Render an update response: how many built shards absorbed the delta in
/// place and how many had to be evicted and re-frozen.
pub fn render_update_response(id: &str, outcome: &super::UpdateOutcome) -> String {
    format!(
        "{{\"v\": {WIRE_VERSION}, \"id\": \"{}\", \"status\": \"ok\", \"update\": \
         {{\"shards_patched\": {}, \"shards_refrozen\": {}}}}}",
        json_escape(id),
        outcome.patched,
        outcome.refrozen,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_basics() {
        let json =
            parse_json(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -7}, "e": 1.5}"#).unwrap();
        assert_eq!(json.get("a").and_then(Json::as_u64), Some(1));
        let arr = json.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(json.get("c").unwrap().get("d").and_then(Json::as_i64), Some(-7));
        assert_eq!(json.get("e"), Some(&Json::Float(1.5)));
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_json("not json").is_err());
    }

    #[test]
    fn request_parsing_versions_and_tolerance() {
        // Missing "v" means version 1; unknown fields are ignored.
        let req = parse_request(
            r#"{"id": "a", "specs": ["zlib"], "future_field": {"x": [1]}, "options": {"reuse": true, "novel": 3}}"#,
        )
        .unwrap();
        match req {
            Request::Solve(solve) => {
                assert_eq!(solve.id, "a");
                assert_eq!(solve.specs, vec!["zlib".to_string()]);
                assert_eq!(solve.options.reuse, Some(true));
                assert_eq!(solve.options.site, None);
            }
            other => panic!("expected solve, got {other:?}"),
        }
        assert!(parse_request(r#"{"v": 2, "specs": ["zlib"]}"#).is_err());
        assert!(parse_request(r#"{"v": 1, "specs": []}"#).is_err());
        assert!(parse_request(r#"{"v": 1, "id": "x"}"#).is_err());
        assert!(parse_request(r#"{"v": 1, "cmd": "unknown"}"#).is_err());
        assert!(parse_request("{{nope").is_err());
        assert_eq!(
            parse_request(r#"{"v": 1, "id": "s", "cmd": "stats"}"#).unwrap(),
            Request::Stats { id: "s".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd": "shutdown"}"#).unwrap(),
            Request::Shutdown { id: String::new() }
        );
    }

    #[test]
    fn request_options_roundtrip_and_apply() {
        let options = RequestOptions {
            site: Some("lassen".to_string()),
            reuse: Some(true),
            deadline_ms: Some(250),
            conflict_limit: Some(1000),
            portfolio: Some(4),
            nogood_store: Some(false),
            seed: Some(u64::MAX),
            retries: Some(2),
        };
        let rendered = options.render();
        assert_eq!(RequestOptions::parse(&rendered).unwrap(), options);
        // Defaults render to the empty object and roundtrip too.
        assert_eq!(RequestOptions::default().render(), "{}");
        assert_eq!(RequestOptions::parse("{}").unwrap(), RequestOptions::default());

        let mut cfg = SolverConfig::default();
        options.apply(&mut cfg);
        assert_eq!(cfg.portfolio, 4);
        assert!(!cfg.share_nogoods);
        assert_eq!(cfg.seed, u64::MAX);
        let budget = cfg.budget.unwrap();
        assert_eq!(budget.wall_deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(budget.conflict_limit, Some(1000));
        // Unset fields leave the base config untouched.
        let mut cfg = SolverConfig::default();
        RequestOptions::default().apply(&mut cfg);
        let base = SolverConfig::default();
        assert_eq!(cfg.seed, base.seed);
        assert_eq!(cfg.portfolio, base.portfolio);
        assert_eq!(cfg.share_nogoods, base.share_nogoods);
        assert!(cfg.budget.is_none());
    }

    #[test]
    fn update_requests_parse_and_render() {
        let req = parse_request(
            r#"{"v": 1, "id": "u1", "cmd": "update", "add_versions": [{"package": "zlib", "version": "2.0"}], "remove_versions": [{"package": "hdf5", "version": "1.8.0"}], "install": ["cmake"], "uninstall": ["mpich"], "novel": true}"#,
        )
        .unwrap();
        match req {
            Request::Update(update) => {
                assert_eq!(update.id, "u1");
                assert_eq!(
                    update.delta.add_versions,
                    vec![("zlib".to_string(), "2.0".to_string())]
                );
                assert_eq!(
                    update.delta.remove_versions,
                    vec![("hdf5".to_string(), "1.8.0".to_string())]
                );
                assert_eq!(update.delta.install, vec!["cmake".to_string()]);
                assert_eq!(update.delta.uninstall, vec!["mpich".to_string()]);
            }
            other => panic!("expected update, got {other:?}"),
        }
        // An empty update is valid on the wire (the server applies a no-op).
        match parse_request(r#"{"v": 1, "id": "u2", "cmd": "update"}"#).unwrap() {
            Request::Update(update) => assert!(update.delta.is_empty()),
            other => panic!("expected update, got {other:?}"),
        }
        // Malformed entries are parse errors, not silent drops.
        assert!(parse_request(r#"{"cmd": "update", "add_versions": [{"package": "z"}]}"#).is_err());
        assert!(parse_request(r#"{"cmd": "update", "add_versions": {"package": "z"}}"#).is_err());
        assert!(parse_request(r#"{"cmd": "update", "install": [7]}"#).is_err());

        let outcome = super::super::UpdateOutcome { patched: 2, refrozen: 1 };
        let line = render_update_response("u1", &outcome);
        let json = parse_json(&line).unwrap();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
        let update = json.get("update").unwrap();
        assert_eq!(update.get("shards_patched").and_then(Json::as_u64), Some(2));
        assert_eq!(update.get("shards_refrozen").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn response_roundtrips_through_render_and_parse() {
        let response = SolveResponse {
            id: "req-1".to_string(),
            spec: "hdf5 ^mpich".to_string(),
            status: SolveStatus::Unsat,
            retries: 1,
            lineno: Some(7),
            message: Some("no valid configuration exists".to_string()),
            diagnostics: vec![crate::diagnose::structural_diagnostic("hdf5 ^mpich")],
            result: None,
        };
        let line = response.render();
        assert_eq!(SolveResponse::parse(&line).unwrap(), response);

        let ok = SolveResponse {
            id: "2".to_string(),
            spec: "zlib".to_string(),
            status: SolveStatus::Ok,
            retries: 0,
            lineno: None,
            message: None,
            diagnostics: Vec::new(),
            result: Some(SolveResult {
                packages: 2,
                reused: vec![("zlib".to_string(), "abc123".to_string())],
                built: vec!["hdf5".to_string()],
                cost: vec![(61, 2), (48, -1)],
                optimal: true,
                dag: "zlib@1.2.12%gcc@11.2.0\n".to_string(),
            }),
        };
        let line = ok.render();
        assert_eq!(SolveResponse::parse(&line).unwrap(), ok);
        // Responses are single lines regardless of embedded newlines.
        assert!(!line.contains('\n'));
    }

    #[test]
    fn response_parse_tolerates_unknown_fields_and_rejects_bad_versions() {
        let line = r#"{"v": 1, "id": "x", "spec": "zlib", "status": "ok", "retries": 0, "novel": [1, 2], "diagnostics": []}"#;
        let response = SolveResponse::parse(line).unwrap();
        assert_eq!(response.status, SolveStatus::Ok);
        assert!(SolveResponse::parse(r#"{"v": 9, "status": "ok"}"#).is_err());
        assert!(SolveResponse::parse(r#"{"v": 1, "status": "martian"}"#).is_err());
    }
}

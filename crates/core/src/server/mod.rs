//! The serving layer behind `spack-solved`: an async sharded concretization
//! service over newline-delimited JSON (see [`wire`]).
//!
//! The paper's concretizer answers one `spack install` at a time; the ROADMAP's
//! north star is a service answering millions of requests. Everything needed
//! already existed below this module — [`ConcretizerSession`] is `&self` and
//! thread-safe, solving is budget-bounded with graceful degradation, and the
//! worst-class taxonomy ([`crate::ResultClass`]) gives every outcome a stable
//! status — so this module is deliberately thin plumbing:
//!
//! * **Shard map** — each request routes to a shard keyed by its `(site, reuse)`
//!   combination, i.e. by the [`BaseFacts`](crate::BaseFacts) digest that pair
//!   produces: one lazily-built [`ConcretizerSession`] per distinct base problem,
//!   frozen once and shared by every request that hits it. The `stats` request
//!   reports per-shard session stats (base grounds, ground reuse, nogood-store
//!   hits) so the "base ground exactly once per digest" invariant is observable
//!   over the wire.
//! * **Admission queue + worker pool** — requests are parsed on the transport
//!   thread and pushed into a bounded queue (backpressure: admission blocks when
//!   the queue is full, which on a socket leaves bytes unread and pushes back on
//!   the client); a fixed pool of workers executes them on the shard sessions.
//! * **Out-of-order streaming** — each worker writes its response line as soon as
//!   its job resolves, tagged by the request's id; a slow solve never blocks a
//!   fast one behind it.
//! * **Graceful shutdown** — a `shutdown` request (or EOF on the pipe) stops
//!   admission; queued and in-flight jobs all complete and their responses are
//!   written before the server exits.
//!
//! Two transports share all of that machinery: [`serve_pipe`] (stdin/stdout —
//! testable, and what CI race-checks against `spack-solve batch --json`) and
//! [`serve_socket`] (a Unix listener, one reader thread per connection, responses
//! multiplexed back on the connection that asked).

pub mod wire;

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use spack_repo::Repository;
use spack_spec::parse_spec;
use spack_store::Database;

use crate::durable::solve_with_retries;
use crate::{Concretizer, ConcretizerSession, ResultClass, SiteConfig, SolveOptions};

/// Configuration of a server instance (both transports).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing solves (at least 1).
    pub workers: usize,
    /// Admission-queue depth; a full queue blocks admission (backpressure).
    pub queue_depth: usize,
    /// Site preset used when a request does not name one.
    pub default_site: String,
    /// Reuse default used when a request does not set the `reuse` flag.
    pub default_reuse: bool,
    /// Budget-retry default used when a request does not set `retries`
    /// (mirrors `spack-solve batch --retries`, default 1).
    pub retries: u32,
    /// Deterministic test hook: stall any solve whose roots include this package
    /// name for the given duration before solving. This is how the integration
    /// tests pin down out-of-order completion without racing wall clocks.
    pub stall: Option<(String, Duration)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            default_site: "quartz".to_string(),
            default_reuse: false,
            retries: 1,
            stall: None,
        }
    }
}

/// Resolve a wire site preset name to its [`SiteConfig`].
pub fn site_by_name(name: &str) -> Option<SiteConfig> {
    match name {
        "quartz" => Some(SiteConfig::quartz()),
        "lassen" => Some(SiteConfig::lassen()),
        "minimal" => Some(SiteConfig::minimal()),
        _ => None,
    }
}

/// Per-shard statistics reported by the `stats` request: the shard key, its
/// [`BaseFacts`](crate::BaseFacts) digest, and the session counters that make
/// ground reuse observable (`base_grounds` stays 1 however many requests hit
/// the shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Site preset name of the shard key.
    pub site: String,
    /// Reuse flag of the shard key.
    pub reuse: bool,
    /// The shard session's base-fact digest (distinct per shard by construction).
    pub digest: u64,
    /// Requests answered by this shard's session.
    pub requests: u64,
    /// Base groundings performed (1 unless the multi-shot path regresses).
    pub base_grounds: u64,
    /// Frozen ground instances shared by every request on this shard.
    pub frozen_instances: usize,
    /// Cross-request nogood-store hits.
    pub store_hits: u64,
    /// Cross-request nogood-store misses.
    pub store_misses: u64,
    /// Clauses transferred between requests through the store.
    pub store_transferred: u64,
}

/// A server-wide statistics snapshot: queue/worker counters plus one
/// [`ShardStats`] per built shard, in deterministic `(site, reuse)` order.
/// Returned by [`serve_pipe`] / [`serve_socket`] at exit and rendered over the
/// wire for `stats` requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs currently admitted but not yet completed.
    pub queue_depth: usize,
    /// Solve requests admitted so far.
    pub jobs_received: u64,
    /// Solve responses written so far.
    pub jobs_completed: u64,
    /// One entry per shard whose session has been built.
    pub shards: Vec<ShardStats>,
}

/// The lazily-built shard map: one [`ConcretizerSession`] per `(site, reuse)`
/// key. The map lock is held only to look up or insert the slot; session
/// construction (base grounding) happens outside it, serialized per shard by the
/// slot's `OnceLock` — two concurrent first requests for one shard build it once.
struct Shards<'a> {
    repo: &'a Repository,
    cache: Option<&'a Database>,
    map: Mutex<HashMap<(String, bool), Arc<Shard<'a>>>>,
}

struct Shard<'a> {
    session: OnceLock<Result<ConcretizerSession<'a>, String>>,
}

impl<'a> Shards<'a> {
    fn new(repo: &'a Repository, cache: Option<&'a Database>) -> Self {
        Shards { repo, cache, map: Mutex::new(HashMap::new()) }
    }

    /// The shard for `(site, reuse)`, building its session on first use.
    fn get(&self, site: &str, reuse: bool) -> Result<Arc<Shard<'a>>, String> {
        let site_config = site_by_name(site).ok_or_else(|| {
            format!("unknown site '{site}' (expected quartz, lassen, or minimal)")
        })?;
        let database = match (reuse, self.cache) {
            (false, _) => None,
            (true, Some(cache)) => Some(cache),
            (true, None) => {
                return Err("reuse requested but the server has no buildcache".to_string())
            }
        };
        let shard = {
            let mut map = self.map.lock().expect("shard map poisoned");
            Arc::clone(
                map.entry((site.to_string(), reuse))
                    .or_insert_with(|| Arc::new(Shard { session: OnceLock::new() })),
            )
        };
        // Build outside the map lock so a slow base grounding on one shard never
        // blocks routing (or building) on another.
        shard.session.get_or_init(|| {
            let mut options = SolveOptions::new().site(site_config);
            if let Some(db) = database {
                options = options.database(db);
            }
            Concretizer::new(self.repo)
                .with_options(options)
                .session()
                .map_err(|e| format!("building the {site}/reuse={reuse} session failed: {e}"))
        });
        Ok(shard)
    }

    /// Stats of every shard whose session has been built, `(site, reuse)`-sorted.
    fn stats(&self) -> Vec<ShardStats> {
        let map = self.map.lock().expect("shard map poisoned");
        let mut shards: Vec<ShardStats> = map
            .iter()
            .filter_map(|((site, reuse), shard)| {
                let session = shard.session.get()?.as_ref().ok()?;
                let s = session.stats();
                Some(ShardStats {
                    site: site.clone(),
                    reuse: *reuse,
                    digest: s.base_digest,
                    requests: s.requests,
                    base_grounds: s.base_grounds,
                    frozen_instances: s.frozen_instances,
                    store_hits: s.store_hits,
                    store_misses: s.store_misses,
                    store_transferred: s.store_transferred,
                })
            })
            .collect();
        shards.sort_by(|a, b| (&a.site, a.reuse).cmp(&(&b.site, b.reuse)));
        shards
    }
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    queued: AtomicU64,
}

enum JobKind {
    Solve(wire::SolveRequest),
    Stats { id: String },
}

/// One queued job, carrying the reply sink of the connection that asked (on the
/// pipe transport every job shares the single output sink).
struct Job<W> {
    kind: JobKind,
    sink: Arc<Mutex<W>>,
}

/// Write one response line and flush, so a reader on the other side of a pipe or
/// socket sees each response as soon as its job resolves.
fn emit<W: Write>(sink: &Mutex<W>, line: &str) {
    let mut out = sink.lock().expect("response sink poisoned");
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Execute one solve request on its shard: parse the specs, route by
/// `(site, reuse)`, apply the per-request wire options (budget, portfolio,
/// nogood store, seed) on the session's forked control, and classify the result.
fn execute(
    shards: &Shards<'_>,
    config: &ServerConfig,
    req: &wire::SolveRequest,
) -> wire::SolveResponse {
    let spec_text = req.specs.join(" ");
    let mut roots = Vec::with_capacity(req.specs.len());
    for text in &req.specs {
        match parse_spec(text) {
            Ok(spec) => roots.push(spec),
            Err(e) => {
                return wire::SolveResponse::failure(
                    &req.id,
                    &spec_text,
                    ResultClass::Parse,
                    &e.to_string(),
                )
            }
        }
    }
    let site = req.options.site.as_deref().unwrap_or(&config.default_site);
    let reuse = req.options.reuse.unwrap_or(config.default_reuse);
    let shard = match shards.get(site, reuse) {
        Ok(shard) => shard,
        Err(message) => {
            return wire::SolveResponse::failure(&req.id, &spec_text, ResultClass::Parse, &message)
        }
    };
    let session = match shard.session.get().expect("session initialized by Shards::get") {
        Ok(session) => session,
        Err(message) => {
            return wire::SolveResponse::failure(
                &req.id,
                &spec_text,
                ResultClass::Internal,
                message,
            )
        }
    };
    if let Some((name, pause)) = &config.stall {
        if roots.iter().any(|r| r.name.as_deref() == Some(name.as_str())) {
            std::thread::sleep(*pause);
        }
    }
    let retries = req.options.retries.unwrap_or(config.retries);
    let options = &req.options;
    let (result, attempts) =
        solve_with_retries(session, &roots, &|cfg| options.apply(cfg), retries);
    wire::SolveResponse::from_result(&req.id, &spec_text, &result, attempts)
}

fn worker_loop<W: Write + Send>(
    rx: &Mutex<mpsc::Receiver<Job<W>>>,
    shards: &Shards<'_>,
    config: &ServerConfig,
    counters: &Counters,
) {
    loop {
        // Holding the receiver lock only for the recv: the holder blocks here
        // while the queue is empty, takes the next job, and releases before
        // executing it — so all other workers run concurrently.
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: admission ended, queue drained
        };
        counters.queued.fetch_sub(1, Ordering::SeqCst);
        match job.kind {
            JobKind::Solve(req) => {
                let response = execute(shards, config, &req);
                emit(&job.sink, &response.render());
                counters.completed.fetch_add(1, Ordering::SeqCst);
            }
            JobKind::Stats { id } => {
                let stats = snapshot(shards, config, counters);
                emit(&job.sink, &wire::render_stats_response(&id, &stats));
            }
        }
    }
}

fn snapshot(shards: &Shards<'_>, config: &ServerConfig, counters: &Counters) -> ServerStats {
    ServerStats {
        workers: config.workers.max(1),
        queue_depth: counters.queued.load(Ordering::SeqCst) as usize,
        jobs_received: counters.received.load(Ordering::SeqCst),
        jobs_completed: counters.completed.load(Ordering::SeqCst),
        shards: shards.stats(),
    }
}

/// Parse one request line and either enqueue it or answer it directly.
/// Returns `Some(id)` when the line was a `shutdown` request.
fn admit_line<W: Write + Send>(
    line: &str,
    tx: &mpsc::SyncSender<Job<W>>,
    sink: &Arc<Mutex<W>>,
    counters: &Counters,
) -> Option<String> {
    match wire::parse_request(line) {
        // A malformed line is answered immediately with a parse-status response;
        // the connection stays up and later lines are processed normally.
        Err(message) => {
            emit(
                sink,
                &wire::SolveResponse::failure("", "", ResultClass::Parse, &message).render(),
            );
            None
        }
        Ok(wire::Request::Shutdown { id }) => Some(id),
        Ok(wire::Request::Stats { id }) => {
            counters.queued.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Job { kind: JobKind::Stats { id }, sink: Arc::clone(sink) });
            None
        }
        Ok(wire::Request::Solve(req)) => {
            counters.received.fetch_add(1, Ordering::SeqCst);
            counters.queued.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Job { kind: JobKind::Solve(req), sink: Arc::clone(sink) });
            None
        }
    }
}

/// Serve newline-delimited JSON requests from `input`, streaming responses to
/// `output` as they resolve (out of order, tagged by id). Returns the final
/// statistics snapshot once the input is exhausted (or a `shutdown` request
/// arrives) **and** every admitted job has completed — drain-on-shutdown is
/// structural: the worker pool is joined before this function returns, and the
/// `shutdown` acknowledgement is the last line written.
pub fn serve_pipe<R, W>(
    repo: &Repository,
    cache: Option<&Database>,
    config: &ServerConfig,
    input: R,
    output: W,
) -> ServerStats
where
    R: BufRead,
    W: Write + Send,
{
    let shards = Shards::new(repo, cache);
    let counters = Counters::default();
    let sink = Arc::new(Mutex::new(output));
    let mut shutdown_id: Option<String> = None;
    // The receiver outlives the scope so worker borrows of it are valid for the
    // scope's lifetime; the sender is moved in and dropped there to end the pool.
    let (tx, rx) = mpsc::sync_channel::<Job<W>>(config.queue_depth.max(1));
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            let rx = &rx;
            let shards = &shards;
            let counters = &counters;
            scope.spawn(move || worker_loop(rx, shards, config, counters));
        }
        for line in input.lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(id) = admit_line(line, &tx, &sink, &counters) {
                shutdown_id = Some(id);
                break;
            }
        }
        // Dropping the sender ends the worker loops once the queue is drained;
        // the scope then joins them — every admitted job completes before exit.
        drop(tx);
    });
    if let Some(id) = shutdown_id {
        let mut ack = wire::SolveResponse::failure(&id, "", ResultClass::Ok, "shutdown complete");
        ack.message = Some("shutdown complete".to_string());
        emit(&sink, &ack.render());
    }
    snapshot(&shards, config, &counters)
}

/// Serve requests on a Unix socket listener: one reader thread per connection,
/// responses multiplexed back on the connection that sent the request. A
/// `shutdown` request from any connection stops the accept loop and admission on
/// every connection; queued and in-flight jobs complete before the function
/// returns (their responses still reach their connections).
#[cfg(unix)]
pub fn serve_socket(
    repo: &Repository,
    cache: Option<&Database>,
    config: &ServerConfig,
    listener: std::os::unix::net::UnixListener,
) -> std::io::Result<ServerStats> {
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::AtomicBool;

    let shards = Shards::new(repo, cache);
    let counters = Counters::default();
    let shutdown = AtomicBool::new(false);
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::sync_channel::<Job<UnixStream>>(config.queue_depth.max(1));
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            let rx = &rx;
            let shards = &shards;
            let counters = &counters;
            scope.spawn(move || worker_loop(rx, shards, config, counters));
        }
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let tx = tx.clone();
                    let counters = &counters;
                    let shutdown = &shutdown;
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else { return };
                        let sink = Arc::new(Mutex::new(stream));
                        for line in BufReader::new(read_half).lines() {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(line) = line else { break };
                            let line = line.trim();
                            if line.is_empty() {
                                continue;
                            }
                            if let Some(id) = admit_line(line, &tx, &sink, counters) {
                                // Socket mode acknowledges before the drain (the
                                // pool is joined below); the ack only confirms
                                // that no further work will be admitted.
                                let mut ack = wire::SolveResponse::failure(
                                    &id,
                                    "",
                                    ResultClass::Ok,
                                    "shutdown accepted; draining in-flight jobs",
                                );
                                ack.message =
                                    Some("shutdown accepted; draining in-flight jobs".to_string());
                                emit(&sink, &ack.render());
                                shutdown.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
        drop(tx);
    });
    Ok(snapshot(&shards, config, &counters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_resolve_and_unknown_is_rejected() {
        assert_eq!(site_by_name("quartz").unwrap().target_family, "x86_64");
        assert_eq!(site_by_name("lassen").unwrap().target_family, "ppc64le");
        assert!(site_by_name("minimal").is_some());
        assert!(site_by_name("frontier").is_none());
    }

    #[test]
    fn shard_map_reuses_one_session_per_key() {
        let repo = spack_repo::builtin_repo();
        let shards = Shards::new(&repo, None);
        let a = shards.get("minimal", false).unwrap();
        let b = shards.get("minimal", false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must reuse one shard");
        let c = shards.get("quartz", false).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys must get distinct shards");
        let da = a.session.get().unwrap().as_ref().unwrap().base_digest();
        let dc = c.session.get().unwrap().as_ref().unwrap().base_digest();
        assert_ne!(da, dc, "distinct sites must produce distinct base digests");
        assert!(shards.get("nowhere", false).is_err());
        assert!(shards.get("minimal", true).is_err(), "no buildcache, reuse must be rejected");
        let stats = shards.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].site, "minimal");
        assert_eq!(stats[1].site, "quartz");
        assert!(stats.iter().all(|s| s.base_grounds == 1));
    }
}

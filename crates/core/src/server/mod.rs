//! The serving layer behind `spack-solved`: an async sharded concretization
//! service over newline-delimited JSON (see [`wire`]).
//!
//! The paper's concretizer answers one `spack install` at a time; the ROADMAP's
//! north star is a service answering millions of requests. Everything needed
//! already existed below this module — [`ConcretizerSession`] is `&self` and
//! thread-safe, solving is budget-bounded with graceful degradation, and the
//! worst-class taxonomy ([`crate::ResultClass`]) gives every outcome a stable
//! status — so this module is deliberately thin plumbing:
//!
//! * **Shard map** — each request routes to a shard keyed by its `(site, reuse)`
//!   combination, i.e. by the [`BaseFacts`](crate::BaseFacts) digest that pair
//!   produces: one lazily-built [`ConcretizerSession`] per distinct base problem,
//!   frozen once and shared by every request that hits it. The `stats` request
//!   reports per-shard session stats (base grounds, ground reuse, nogood-store
//!   hits) so the "base ground exactly once per digest" invariant is observable
//!   over the wire.
//! * **Admission queue + worker pool** — requests are parsed on the transport
//!   thread and pushed into a bounded queue (backpressure: admission blocks when
//!   the queue is full, which on a socket leaves bytes unread and pushes back on
//!   the client); a fixed pool of workers executes them on the shard sessions.
//! * **Out-of-order streaming** — each worker writes its response line as soon as
//!   its job resolves, tagged by the request's id; a slow solve never blocks a
//!   fast one behind it.
//! * **Live base updates** — an `update` request carries a
//!   [`crate::BaseDelta`] (repository or buildcache churn) and patches
//!   every built shard session **in place** between in-flight requests
//!   ([`ConcretizerSession::apply_base_delta`]): updates wait for running solves
//!   (they hold the shard's read lock), no in-flight response is lost, and any
//!   solve sent after the update's response sees the post-delta universe. A
//!   shard that cannot absorb the delta incrementally
//!   is evicted and re-frozen from the new universe — the reason lands in the
//!   `stats` response (`last_refreeze`), never in a failed update.
//! * **Graceful shutdown** — a `shutdown` request (or EOF on the pipe) stops
//!   admission; queued and in-flight jobs all complete and their responses are
//!   written before the server exits.
//!
//! Two transports share all of that machinery: [`serve_pipe`] (stdin/stdout —
//! testable, and what CI race-checks against `spack-solve batch --json`) and
//! [`serve_socket`] (a Unix listener, one reader thread per connection, responses
//! multiplexed back on the connection that asked).

pub mod wire;

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use spack_repo::Repository;
use spack_spec::parse_spec;
use spack_store::Database;

use crate::durable::solve_with_retries;
use crate::session::panic_message;
use crate::{BaseDelta, Concretizer, ConcretizerSession, ResultClass, SiteConfig, SolveOptions};

/// Configuration of a server instance (both transports).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing solves (at least 1).
    pub workers: usize,
    /// Admission-queue depth; a full queue blocks admission (backpressure).
    pub queue_depth: usize,
    /// Site preset used when a request does not name one.
    pub default_site: String,
    /// Reuse default used when a request does not set the `reuse` flag.
    pub default_reuse: bool,
    /// Budget-retry default used when a request does not set `retries`
    /// (mirrors `spack-solve batch --retries`, default 1).
    pub retries: u32,
    /// Deterministic test hook: stall any solve whose roots include this package
    /// name for the given duration before solving. This is how the integration
    /// tests pin down out-of-order completion without racing wall clocks.
    pub stall: Option<(String, Duration)>,
    /// Deterministic test hook: treat every `update` request as un-patchable,
    /// forcing the evict-and-refreeze fallback on all built shards. This is how
    /// tests pin the fallback path without manufacturing a failing delta.
    pub force_refreeze: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            default_site: "quartz".to_string(),
            default_reuse: false,
            retries: 1,
            stall: None,
            force_refreeze: false,
        }
    }
}

/// Resolve a wire site preset name to its [`SiteConfig`].
pub fn site_by_name(name: &str) -> Option<SiteConfig> {
    match name {
        "quartz" => Some(SiteConfig::quartz()),
        "lassen" => Some(SiteConfig::lassen()),
        "minimal" => Some(SiteConfig::minimal()),
        _ => None,
    }
}

/// Per-shard statistics reported by the `stats` request: the shard key, its
/// [`BaseFacts`](crate::BaseFacts) digest, and the session counters that make
/// ground reuse observable (`base_grounds` stays 1 however many requests hit
/// the shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Site preset name of the shard key.
    pub site: String,
    /// Reuse flag of the shard key.
    pub reuse: bool,
    /// The shard session's base-fact digest (distinct per shard by construction).
    pub digest: u64,
    /// Requests answered by this shard's session.
    pub requests: u64,
    /// Base groundings performed (1 unless the multi-shot path regresses).
    pub base_grounds: u64,
    /// Frozen ground instances shared by every request on this shard.
    pub frozen_instances: usize,
    /// Cross-request nogood-store hits.
    pub store_hits: u64,
    /// Cross-request nogood-store misses.
    pub store_misses: u64,
    /// Clauses transferred between requests through the store.
    pub store_transferred: u64,
    /// Base deltas this shard absorbed in place (across session generations).
    pub patches: u64,
    /// Times this shard's session was rebuilt from scratch by an update.
    pub refreezes: u64,
    /// Times this shard's session was evicted (every refreeze evicts first).
    pub evictions: u64,
    /// Why the most recent eviction happened, if any ever did.
    pub last_refreeze: Option<String>,
}

/// A server-wide statistics snapshot: queue/worker counters plus one
/// [`ShardStats`] per built shard, in deterministic `(site, reuse)` order.
/// Returned by [`serve_pipe`] / [`serve_socket`] at exit and rendered over the
/// wire for `stats` requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs currently admitted but not yet completed.
    pub queue_depth: usize,
    /// Solve requests admitted so far.
    pub jobs_received: u64,
    /// Solve responses written so far.
    pub jobs_completed: u64,
    /// One entry per shard whose session has been built.
    pub shards: Vec<ShardStats>,
}

/// How an `update` request landed across the shard map: every **built** shard is
/// either patched in place or evicted and re-frozen from the post-delta
/// universe; unbuilt shards lazily freeze against it on first use and appear in
/// neither count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Shards whose session absorbed the delta in place.
    pub patched: u64,
    /// Shards whose session was evicted and re-frozen from scratch.
    pub refrozen: u64,
}

/// An append-only arena handing out references that live as long as the arena.
/// Box addresses are stable and entries are never dropped before the arena is,
/// so `alloc` can tie its result to `&self`.
struct Arena<T> {
    items: Mutex<Vec<Box<T>>>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { items: Mutex::new(Vec::new()) }
    }
}

impl<T> Arena<T> {
    fn alloc(&self, value: T) -> &T {
        let mut items = self.items.lock().expect("arena poisoned");
        items.push(Box::new(value));
        let ptr: *const T = &**items.last().expect("just pushed");
        // SAFETY: the value sits behind a Box whose heap address never moves;
        // the vector only grows and drops nothing until the arena itself drops,
        // and the returned borrow of `self` cannot outlive the arena.
        unsafe { &*ptr }
    }
}

/// Owned storage for the universes live updates derive: sessions borrow their
/// repository and buildcache for `'a`, so every post-delta universe must live at
/// least that long. Declared before [`Shards`] in the serve functions so the
/// borrows check out.
#[derive(Default)]
struct Arenas {
    repos: Arena<Repository>,
    caches: Arena<Database>,
}

/// The lazily-built shard map: one [`ConcretizerSession`] per `(site, reuse)`
/// key. The map lock is held only to look up or insert the slot; session
/// construction (base grounding) happens under the slot's write lock — two
/// concurrent first requests for one shard build it once, and a slow grounding
/// on one shard never blocks routing on another.
///
/// Lock order: `update_lock` → `universe` (briefly) → slot write locks, one
/// shard at a time; `get` takes the slot write lock first and `universe` briefly
/// inside it. `universe` is never held while a slot lock is taken, so the two
/// orders cannot deadlock.
struct Shards<'a> {
    /// The current base universe; updates swap it, lazy builds read it under
    /// their slot's write lock (so a build never races an update unseen).
    universe: Mutex<(&'a Repository, Option<&'a Database>)>,
    arenas: &'a Arenas,
    /// Serializes `update` requests; solves are only serialized per shard (by
    /// the slot's write lock) while their shard is being patched.
    update_lock: Mutex<()>,
    map: Mutex<HashMap<(String, bool), Arc<Shard<'a>>>>,
}

#[derive(Default)]
struct Shard<'a> {
    session: RwLock<Option<Result<ConcretizerSession<'a>, String>>>,
    patches: AtomicU64,
    refreezes: AtomicU64,
    evictions: AtomicU64,
    last_refreeze: Mutex<Option<String>>,
}

/// Freeze a session for one shard key against the given universe.
fn build_session<'a>(
    repo: &'a Repository,
    database: Option<&'a Database>,
    site: &str,
    site_config: SiteConfig,
    reuse: bool,
) -> Result<ConcretizerSession<'a>, String> {
    let mut options = SolveOptions::new().site(site_config);
    if let Some(db) = database {
        options = options.database(db);
    }
    Concretizer::new(repo)
        .with_options(options)
        .session()
        .map_err(|e| format!("building the {site}/reuse={reuse} session failed: {e}"))
}

impl<'a> Shards<'a> {
    fn new(repo: &'a Repository, cache: Option<&'a Database>, arenas: &'a Arenas) -> Self {
        Shards {
            universe: Mutex::new((repo, cache)),
            arenas,
            update_lock: Mutex::new(()),
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The shard for `(site, reuse)`, building its session on first use.
    fn get(&self, site: &str, reuse: bool) -> Result<Arc<Shard<'a>>, String> {
        let site_config = site_by_name(site).ok_or_else(|| {
            format!("unknown site '{site}' (expected quartz, lassen, or minimal)")
        })?;
        if reuse && self.universe.lock().expect("universe poisoned").1.is_none() {
            return Err("reuse requested but the server has no buildcache".to_string());
        }
        let shard = {
            let mut map = self.map.lock().expect("shard map poisoned");
            Arc::clone(map.entry((site.to_string(), reuse)).or_default())
        };
        // Fast path: an already-built (or already-failed) slot needs no lock
        // stronger than a read.
        if shard.session.read().unwrap_or_else(|e| e.into_inner()).is_some() {
            return Ok(shard);
        }
        let mut slot = shard.session.write().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            // Read the universe *under the slot's write lock*: an update that
            // swapped it either already finished (we build from the new
            // universe) or will wait on this write lock and patch what we
            // build — identical facts, a no-op diff. Either way no stale
            // session survives.
            let (repo, cache) = *self.universe.lock().expect("universe poisoned");
            let database = if reuse { cache } else { None };
            if reuse && database.is_none() {
                return Err("reuse requested but the server has no buildcache".to_string());
            }
            *slot = Some(build_session(repo, database, site, site_config, reuse));
        }
        drop(slot);
        Ok(shard)
    }

    /// Apply a base delta across the shard map: derive the post-delta universe
    /// (pinned in the arenas), swap it in for future lazy builds, then patch
    /// every built session in place — falling back to evict-and-refreeze when a
    /// shard cannot absorb the delta incrementally (or when the
    /// `force_refreeze` test hook demands it). Never fails: per-shard fallback
    /// reasons land in `stats` (`last_refreeze`), not in the update response.
    fn apply_update(&self, config: &ServerConfig, delta: &BaseDelta) -> UpdateOutcome {
        let _serialize = self.update_lock.lock().expect("update lock poisoned");
        let (new_repo, new_cache) = {
            let mut universe = self.universe.lock().expect("universe poisoned");
            let (repo, cache) = *universe;
            let (new_repo, new_cache) = delta.apply(repo, cache);
            let new_repo: &'a Repository = self.arenas.repos.alloc(new_repo);
            let new_cache: Option<&'a Database> = new_cache.map(|db| self.arenas.caches.alloc(db));
            *universe = (new_repo, new_cache);
            (new_repo, new_cache)
        };
        let built: Vec<((String, bool), Arc<Shard<'a>>)> = {
            let map = self.map.lock().expect("shard map poisoned");
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let mut outcome = UpdateOutcome::default();
        for ((site, reuse), shard) in built {
            let Some(site_config) = site_by_name(&site) else { continue };
            let database = if reuse { new_cache } else { None };
            // Taking the write lock waits for in-flight solves on this shard
            // (they hold read locks); solves on other shards keep running.
            let mut slot = shard.session.write().unwrap_or_else(|e| e.into_inner());
            let refreeze_reason = match slot.as_mut() {
                None => continue, // never built: it will lazily freeze post-delta
                Some(Ok(session)) if !config.force_refreeze => {
                    match catch_unwind(AssertUnwindSafe(|| {
                        session.apply_base_delta(new_repo, database)
                    })) {
                        Ok(Ok(_)) => {
                            shard.patches.fetch_add(1, Ordering::SeqCst);
                            outcome.patched += 1;
                            continue;
                        }
                        Ok(Err(e)) => format!("incremental patch failed: {e}"),
                        Err(payload) => {
                            format!("incremental patch panicked: {}", panic_message(payload))
                        }
                    }
                }
                Some(Ok(_)) => "refreeze forced by configuration (test hook)".to_string(),
                Some(Err(e)) => format!("session was never usable: {e}"),
            };
            // Evict-and-refreeze fallback: a partially-patched (or failed)
            // session must not answer another request.
            shard.evictions.fetch_add(1, Ordering::SeqCst);
            *slot = Some(build_session(new_repo, database, &site, site_config, reuse));
            shard.refreezes.fetch_add(1, Ordering::SeqCst);
            *shard.last_refreeze.lock().expect("refreeze reason poisoned") = Some(refreeze_reason);
            outcome.refrozen += 1;
        }
        outcome
    }

    /// Stats of every shard whose session has been built, `(site, reuse)`-sorted.
    fn stats(&self) -> Vec<ShardStats> {
        let map = self.map.lock().expect("shard map poisoned");
        let mut shards: Vec<ShardStats> = map
            .iter()
            .filter_map(|((site, reuse), shard)| {
                let slot = shard.session.read().unwrap_or_else(|e| e.into_inner());
                let s = slot.as_ref()?.as_ref().ok()?.stats();
                Some(ShardStats {
                    site: site.clone(),
                    reuse: *reuse,
                    digest: s.base_digest,
                    requests: s.requests,
                    base_grounds: s.base_grounds,
                    frozen_instances: s.frozen_instances,
                    store_hits: s.store_hits,
                    store_misses: s.store_misses,
                    store_transferred: s.store_transferred,
                    patches: shard.patches.load(Ordering::SeqCst),
                    refreezes: shard.refreezes.load(Ordering::SeqCst),
                    evictions: shard.evictions.load(Ordering::SeqCst),
                    last_refreeze: shard
                        .last_refreeze
                        .lock()
                        .expect("refreeze reason poisoned")
                        .clone(),
                })
            })
            .collect();
        shards.sort_by(|a, b| (&a.site, a.reuse).cmp(&(&b.site, b.reuse)));
        shards
    }
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    queued: AtomicU64,
}

enum JobKind {
    Solve(wire::SolveRequest),
    Update(wire::UpdateRequest),
    Stats { id: String },
}

/// One queued job, carrying the reply sink of the connection that asked (on the
/// pipe transport every job shares the single output sink).
struct Job<W> {
    kind: JobKind,
    sink: Arc<Mutex<W>>,
}

/// Write one response line and flush, so a reader on the other side of a pipe or
/// socket sees each response as soon as its job resolves.
fn emit<W: Write>(sink: &Mutex<W>, line: &str) {
    let mut out = sink.lock().expect("response sink poisoned");
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Execute one solve request on its shard: parse the specs, route by
/// `(site, reuse)`, apply the per-request wire options (budget, portfolio,
/// nogood store, seed) on the session's forked control, and classify the result.
fn execute(
    shards: &Shards<'_>,
    config: &ServerConfig,
    req: &wire::SolveRequest,
) -> wire::SolveResponse {
    let spec_text = req.specs.join(" ");
    let mut roots = Vec::with_capacity(req.specs.len());
    for text in &req.specs {
        match parse_spec(text) {
            Ok(spec) => roots.push(spec),
            Err(e) => {
                return wire::SolveResponse::failure(
                    &req.id,
                    &spec_text,
                    ResultClass::Parse,
                    &e.to_string(),
                )
            }
        }
    }
    let site = req.options.site.as_deref().unwrap_or(&config.default_site);
    let reuse = req.options.reuse.unwrap_or(config.default_reuse);
    let shard = match shards.get(site, reuse) {
        Ok(shard) => shard,
        Err(message) => {
            return wire::SolveResponse::failure(&req.id, &spec_text, ResultClass::Parse, &message)
        }
    };
    // The read guard is held for the whole solve: an update patching this shard
    // (write lock) waits for in-flight requests and never mutates under them.
    let slot = shard.session.read().unwrap_or_else(|e| e.into_inner());
    let session = match slot.as_ref() {
        Some(Ok(session)) => session,
        Some(Err(message)) => {
            return wire::SolveResponse::failure(
                &req.id,
                &spec_text,
                ResultClass::Internal,
                message,
            )
        }
        None => {
            return wire::SolveResponse::failure(
                &req.id,
                &spec_text,
                ResultClass::Internal,
                "shard session unavailable",
            )
        }
    };
    if let Some((name, pause)) = &config.stall {
        if roots.iter().any(|r| r.name.as_deref() == Some(name.as_str())) {
            std::thread::sleep(*pause);
        }
    }
    let retries = req.options.retries.unwrap_or(config.retries);
    let options = &req.options;
    let (result, attempts) =
        solve_with_retries(session, &roots, &|cfg| options.apply(cfg), retries);
    wire::SolveResponse::from_result(&req.id, &spec_text, &result, attempts)
}

fn worker_loop<W: Write + Send>(
    rx: &Mutex<mpsc::Receiver<Job<W>>>,
    shards: &Shards<'_>,
    config: &ServerConfig,
    counters: &Counters,
) {
    loop {
        // Holding the receiver lock only for the recv: the holder blocks here
        // while the queue is empty, takes the next job, and releases before
        // executing it — so all other workers run concurrently.
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: admission ended, queue drained
        };
        counters.queued.fetch_sub(1, Ordering::SeqCst);
        match job.kind {
            JobKind::Solve(req) => {
                let response = execute(shards, config, &req);
                emit(&job.sink, &response.render());
                counters.completed.fetch_add(1, Ordering::SeqCst);
            }
            JobKind::Update(req) => {
                let outcome = shards.apply_update(config, &req.delta);
                emit(&job.sink, &wire::render_update_response(&req.id, &outcome));
            }
            JobKind::Stats { id } => {
                let stats = snapshot(shards, config, counters);
                emit(&job.sink, &wire::render_stats_response(&id, &stats));
            }
        }
    }
}

fn snapshot(shards: &Shards<'_>, config: &ServerConfig, counters: &Counters) -> ServerStats {
    ServerStats {
        workers: config.workers.max(1),
        queue_depth: counters.queued.load(Ordering::SeqCst) as usize,
        jobs_received: counters.received.load(Ordering::SeqCst),
        jobs_completed: counters.completed.load(Ordering::SeqCst),
        shards: shards.stats(),
    }
}

/// Parse one request line and either enqueue it or answer it directly.
/// Returns `Some(id)` when the line was a `shutdown` request.
fn admit_line<W: Write + Send>(
    line: &str,
    tx: &mpsc::SyncSender<Job<W>>,
    sink: &Arc<Mutex<W>>,
    counters: &Counters,
) -> Option<String> {
    match wire::parse_request(line) {
        // A malformed line is answered immediately with a parse-status response;
        // the connection stays up and later lines are processed normally.
        Err(message) => {
            emit(
                sink,
                &wire::SolveResponse::failure("", "", ResultClass::Parse, &message).render(),
            );
            None
        }
        Ok(wire::Request::Shutdown { id }) => Some(id),
        Ok(wire::Request::Update(req)) => {
            counters.queued.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Job { kind: JobKind::Update(req), sink: Arc::clone(sink) });
            None
        }
        Ok(wire::Request::Stats { id }) => {
            counters.queued.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Job { kind: JobKind::Stats { id }, sink: Arc::clone(sink) });
            None
        }
        Ok(wire::Request::Solve(req)) => {
            counters.received.fetch_add(1, Ordering::SeqCst);
            counters.queued.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Job { kind: JobKind::Solve(req), sink: Arc::clone(sink) });
            None
        }
    }
}

/// Serve newline-delimited JSON requests from `input`, streaming responses to
/// `output` as they resolve (out of order, tagged by id). Returns the final
/// statistics snapshot once the input is exhausted (or a `shutdown` request
/// arrives) **and** every admitted job has completed — drain-on-shutdown is
/// structural: the worker pool is joined before this function returns, and the
/// `shutdown` acknowledgement is the last line written.
pub fn serve_pipe<R, W>(
    repo: &Repository,
    cache: Option<&Database>,
    config: &ServerConfig,
    input: R,
    output: W,
) -> ServerStats
where
    R: BufRead,
    W: Write + Send,
{
    // Declared before `shards` so update-derived universes outlive the sessions
    // borrowing them.
    let arenas = Arenas::default();
    let shards = Shards::new(repo, cache, &arenas);
    let counters = Counters::default();
    let sink = Arc::new(Mutex::new(output));
    let mut shutdown_id: Option<String> = None;
    // The receiver outlives the scope so worker borrows of it are valid for the
    // scope's lifetime; the sender is moved in and dropped there to end the pool.
    let (tx, rx) = mpsc::sync_channel::<Job<W>>(config.queue_depth.max(1));
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            let rx = &rx;
            let shards = &shards;
            let counters = &counters;
            scope.spawn(move || worker_loop(rx, shards, config, counters));
        }
        for line in input.lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(id) = admit_line(line, &tx, &sink, &counters) {
                shutdown_id = Some(id);
                break;
            }
        }
        // Dropping the sender ends the worker loops once the queue is drained;
        // the scope then joins them — every admitted job completes before exit.
        drop(tx);
    });
    if let Some(id) = shutdown_id {
        let mut ack = wire::SolveResponse::failure(&id, "", ResultClass::Ok, "shutdown complete");
        ack.message = Some("shutdown complete".to_string());
        emit(&sink, &ack.render());
    }
    snapshot(&shards, config, &counters)
}

/// Serve requests on a Unix socket listener: one reader thread per connection,
/// responses multiplexed back on the connection that sent the request. A
/// `shutdown` request from any connection stops the accept loop and admission on
/// every connection; queued and in-flight jobs complete before the function
/// returns (their responses still reach their connections).
#[cfg(unix)]
pub fn serve_socket(
    repo: &Repository,
    cache: Option<&Database>,
    config: &ServerConfig,
    listener: std::os::unix::net::UnixListener,
) -> std::io::Result<ServerStats> {
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::AtomicBool;

    // Declared before `shards` so update-derived universes outlive the sessions
    // borrowing them.
    let arenas = Arenas::default();
    let shards = Shards::new(repo, cache, &arenas);
    let counters = Counters::default();
    let shutdown = AtomicBool::new(false);
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::sync_channel::<Job<UnixStream>>(config.queue_depth.max(1));
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            let rx = &rx;
            let shards = &shards;
            let counters = &counters;
            scope.spawn(move || worker_loop(rx, shards, config, counters));
        }
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let tx = tx.clone();
                    let counters = &counters;
                    let shutdown = &shutdown;
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else { return };
                        let sink = Arc::new(Mutex::new(stream));
                        for line in BufReader::new(read_half).lines() {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(line) = line else { break };
                            let line = line.trim();
                            if line.is_empty() {
                                continue;
                            }
                            if let Some(id) = admit_line(line, &tx, &sink, counters) {
                                // Socket mode acknowledges before the drain (the
                                // pool is joined below); the ack only confirms
                                // that no further work will be admitted.
                                let mut ack = wire::SolveResponse::failure(
                                    &id,
                                    "",
                                    ResultClass::Ok,
                                    "shutdown accepted; draining in-flight jobs",
                                );
                                ack.message =
                                    Some("shutdown accepted; draining in-flight jobs".to_string());
                                emit(&sink, &ack.render());
                                shutdown.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
        drop(tx);
    });
    Ok(snapshot(&shards, config, &counters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_resolve_and_unknown_is_rejected() {
        assert_eq!(site_by_name("quartz").unwrap().target_family, "x86_64");
        assert_eq!(site_by_name("lassen").unwrap().target_family, "ppc64le");
        assert!(site_by_name("minimal").is_some());
        assert!(site_by_name("frontier").is_none());
    }

    fn shard_digest(shard: &Shard<'_>) -> u64 {
        shard.session.read().unwrap().as_ref().unwrap().as_ref().unwrap().base_digest()
    }

    #[test]
    fn shard_map_reuses_one_session_per_key() {
        let repo = spack_repo::builtin_repo();
        let arenas = Arenas::default();
        let shards = Shards::new(&repo, None, &arenas);
        let a = shards.get("minimal", false).unwrap();
        let b = shards.get("minimal", false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must reuse one shard");
        let c = shards.get("quartz", false).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys must get distinct shards");
        assert_ne!(
            shard_digest(&a),
            shard_digest(&c),
            "distinct sites must produce distinct base digests"
        );
        assert!(shards.get("nowhere", false).is_err());
        assert!(shards.get("minimal", true).is_err(), "no buildcache, reuse must be rejected");
        let stats = shards.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].site, "minimal");
        assert_eq!(stats[1].site, "quartz");
        assert!(stats.iter().all(|s| s.base_grounds == 1));
    }

    #[test]
    fn update_patches_built_shards_in_place() {
        let repo = spack_repo::builtin_repo();
        let arenas = Arenas::default();
        let shards = Shards::new(&repo, None, &arenas);
        let config = ServerConfig::default();
        let shard = shards.get("minimal", false).unwrap();
        let before = shard_digest(&shard);
        let delta = BaseDelta {
            add_versions: vec![("zlib".to_string(), "2.0".to_string())],
            ..BaseDelta::default()
        };
        let outcome = shards.apply_update(&config, &delta);
        assert_eq!(outcome, UpdateOutcome { patched: 1, refrozen: 0 });
        assert_ne!(shard_digest(&shard), before, "the delta must change the base digest");

        // The patched session must be observationally identical to a session
        // frozen fresh against the post-delta universe.
        let (fresh_repo, _) = delta.apply(&repo, None);
        let fresh = Concretizer::new(&fresh_repo)
            .with_options(SolveOptions::new().site(SiteConfig::minimal()))
            .session()
            .unwrap();
        assert_eq!(shard_digest(&shard), fresh.base_digest());
        let slot = shard.session.read().unwrap();
        let patched = slot.as_ref().unwrap().as_ref().unwrap();
        let a = patched.concretize_str("zlib@2.0").unwrap();
        let b = fresh.concretize_str("zlib@2.0").unwrap();
        assert_eq!(a.spec.to_string(), b.spec.to_string());
        drop(slot);

        // A shard built only after the update freezes straight onto the
        // post-delta universe.
        let late = shards.get("quartz", false).unwrap();
        let late_slot = late.session.read().unwrap();
        assert!(late_slot.as_ref().unwrap().as_ref().unwrap().concretize_str("zlib@2.0").is_ok());
        drop(late_slot);

        let stats = shards.stats();
        let minimal = stats.iter().find(|s| s.site == "minimal").unwrap();
        assert_eq!((minimal.patches, minimal.refreezes, minimal.evictions), (1, 0, 0));
        assert_eq!(minimal.base_grounds, 1, "patching must not re-ground the base");
        assert!(minimal.last_refreeze.is_none());
    }

    #[test]
    fn forced_refreeze_takes_the_eviction_path_and_logs_why() {
        let repo = spack_repo::builtin_repo();
        let arenas = Arenas::default();
        let shards = Shards::new(&repo, None, &arenas);
        let config = ServerConfig { force_refreeze: true, ..ServerConfig::default() };
        let shard = shards.get("minimal", false).unwrap();
        let delta = BaseDelta {
            add_versions: vec![("zlib".to_string(), "2.0".to_string())],
            ..BaseDelta::default()
        };
        let outcome = shards.apply_update(&config, &delta);
        assert_eq!(outcome, UpdateOutcome { patched: 0, refrozen: 1 });

        // The re-frozen session answers from the post-delta universe.
        let slot = shard.session.read().unwrap();
        let session = slot.as_ref().unwrap().as_ref().unwrap();
        assert!(session.concretize_str("zlib@2.0").is_ok());
        drop(slot);
        let stats = shards.stats();
        let minimal = stats.iter().find(|s| s.site == "minimal").unwrap();
        assert_eq!((minimal.patches, minimal.refreezes, minimal.evictions), (0, 1, 1));
        assert!(minimal.last_refreeze.as_ref().unwrap().contains("forced"));
    }
}

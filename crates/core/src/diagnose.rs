//! Unsat-core error diagnostics: turning "UNSAT" into actionable messages.
//!
//! The paper's concretizer does not just find optimal solutions — it *explains*
//! infeasible ones. Violations of the software model are encoded as weighted
//! `error(Priority, Msg, Args)` facts (folded into the fixed-arity `error3`…`error6`
//! predicates of `concretize.lp`), interpreted by `error_guard.lp`: hard integrity
//! constraints guarded behind `not relax_mode`, plus error-minimization levels
//! conditioned on `relax_mode` — where `relax_mode` is an `#external` guard atom whose
//! truth each solve fixes through an assumption. The concretizer grounds **once** and
//! solves twice:
//!
//! 1. **Normal solve** (`relax_mode` pinned false) — errors are hard, and every
//!    root-spec condition is pinned true through a *solver assumption*. An UNSAT
//!    answer therefore carries an **unsat core**: the subset of the user's requirements
//!    that cannot hold together, minimized here by deletion (drop one member, re-probe,
//!    with the guard held false throughout).
//! 2. **Relaxed solve** (`relax_mode` flipped true) — the *same* ground program is
//!    re-solved with errors *minimized* above every Table II criterion (a priority
//!    floor of 1000 skips the ordinary levels). The minimal set of surviving error
//!    atoms names exactly which rules of the software model had to be violated, and
//!    each atom is rendered into a human-readable [`Diagnostic`].
//!
//! Both solves share one control object — there is no second setup and no second
//! grounding on the unsat path ([`DiagnosticsStats::second_phase_ground`] stays zero).
//! The result is carried by [`crate::ConcretizeError::Unsatisfiable`], printed by
//! `spack-solve --explain`.

use std::time::Duration;

use asp::{Model, Value};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The condition makes the request unsatisfiable.
    Error,
    /// Supporting context: the core-summary diagnostic is downgraded to a note when
    /// model-level errors already carry the specifics (the CLI renders notes with a
    /// distinct tag).
    Note,
}

/// One rendered explanation of why a request cannot be concretized.
///
/// Diagnostics map 1:1 onto the paper's `error(Priority, Msg, Args)` scheme:
/// [`Diagnostic::priority`] is the error's `Priority` (higher = more severe, and the
/// relaxed solve minimizes higher priorities first, at objective level
/// `1000 + Priority`), [`Diagnostic::code`] is the symbolic `Msg` key, and the
/// rendered [`Diagnostic::message`] interpolates `Args`. Core-derived diagnostics
/// (conflicting root requirements) use the reserved codes `unsat-requirement` /
/// `conflicting-requirements` at priority 110, above every model error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of this diagnostic.
    pub severity: Severity,
    /// The paper-scheme error priority (higher first).
    pub priority: i64,
    /// Symbolic error key (`Msg` of the error atom), e.g. `version-constraint`.
    pub code: String,
    /// Human-readable, self-contained message.
    pub message: String,
    /// The package or virtual the diagnostic is about, when known.
    pub package: Option<String>,
    /// Spec provenance: the root requirements (minimized unsat core, as the user wrote
    /// them) implicated in the failure.
    pub provenance: Vec<String>,
}

/// Cost accounting of the diagnostics machinery, reported by `spack-solve --stats` and
/// the bench harness so the price of explanations is visible next to solve times.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticsStats {
    /// Size of the unsat core as first extracted from conflict analysis (root-spec
    /// assumptions only; the pinned `relax_mode` guard is bookkeeping, not blame).
    pub core_size: usize,
    /// Size of the core after deletion-based minimization.
    pub minimized_core_size: usize,
    /// Number of probe solves performed by core minimization.
    pub minimization_rounds: u64,
    /// Wall-clock time of the whole second phase (core minimization + relaxed solve).
    pub second_phase: Duration,
    /// Combined per-phase accounting across the *entire* failed concretization — both
    /// the normal and the relaxed solve. Before the single-grounding fold the second
    /// phase's setup and grounding were invisible in exactly the numbers meant to
    /// track them; now every phase is attributed here.
    pub phases: crate::PhaseTimings,
    /// Grounding time attributable to the second phase alone. Zero since the fold:
    /// the relaxed solve reuses the normal solve's ground program.
    pub second_phase_ground: Duration,
    /// Clauses the relaxed solve replayed from the session clause cache — the failed
    /// hard solve's loop nogoods and provenance-safe learned clauses, warm-starting
    /// the re-solve instead of re-deriving them.
    pub warm_clauses: u64,
    /// Was the (single) grounding behind both solves an incremental delta on a frozen
    /// session base? Mirrors [`asp::ground::GroundStats::delta`] so session
    /// accounting can detect a silent full re-ground on the unsatisfiable path too.
    pub ground_delta: bool,
}

fn arg_str(args: &[Value], i: usize) -> String {
    args.get(i).map(|v| v.as_str()).unwrap_or_default()
}

fn arg_int(args: &[Value], i: usize) -> i64 {
    args.get(i).and_then(|v| v.as_int()).unwrap_or(0)
}

/// Is this a symmetric `A vs B` conflict code whose two orderings describe the same
/// violation?
fn symmetric(code: &str) -> bool {
    matches!(
        code,
        "version-conflict"
            | "compiler-conflict"
            | "os-conflict"
            | "target-conflict"
            | "platform-conflict"
            | "variant-conflict"
    )
}

/// Render one error atom (already split into priority / code / remaining args).
fn render(priority: i64, code: &str, args: &[String]) -> Diagnostic {
    let a = |i: usize| args.get(i).cloned().unwrap_or_default();
    let (package, message) = match code {
        "no-provider" => (a(0), format!("no possible provider for virtual '{}'", a(0))),
        "version-conflict" => {
            (a(0), format!("conflicting versions imposed on {}: {} vs {}", a(0), a(1), a(2)))
        }
        "version-constraint" => {
            (a(0), format!("{}: no known version satisfies the constraint @{}", a(0), a(1)))
        }
        "no-version" => (a(0), format!("{} has no declared versions to choose from", a(0))),
        "variant-conflict" => (
            a(0),
            format!(
                "conflicting values imposed on variant '{}' of {}: {} vs {}",
                a(1),
                a(0),
                a(2),
                a(3)
            ),
        ),
        "variant-value" => {
            (a(0), format!("invalid value '{}' for variant '{}' of {}", a(2), a(1), a(0)))
        }
        "unknown-variant" => (a(0), format!("package {} has no variant '{}'", a(0), a(1))),
        "conflict" => (a(0), format!("{}: {}", a(0), a(1))),
        "compiler-conflict" => {
            (a(0), format!("conflicting compilers imposed on {}: {} vs {}", a(0), a(1), a(2)))
        }
        // The compiler-constraint text already carries its `%` sigil.
        "compiler-constraint" => {
            (a(0), format!("{}: no available compiler satisfies {}", a(0), a(1)))
        }
        "compiler-target" => {
            (a(0), format!("compiler {} cannot build {} for target {}", a(1), a(0), a(2)))
        }
        "target-constraint" => {
            (a(0), format!("{}: no available target satisfies target={}", a(0), a(1)))
        }
        "target-conflict" => {
            (a(0), format!("conflicting targets imposed on {}: {} vs {}", a(0), a(1), a(2)))
        }
        "os-conflict" => (
            a(0),
            format!("conflicting operating systems imposed on {}: {} vs {}", a(0), a(1), a(2)),
        ),
        "platform-conflict" => {
            (a(0), format!("conflicting platforms imposed on {}: {} vs {}", a(0), a(1), a(2)))
        }
        "provider-invalid" => {
            (a(1), format!("{} cannot provide '{}' under the chosen configuration", a(1), a(0)))
        }
        "not-needed" => {
            (a(0), format!("{} was requested but nothing in the solution depends on it", a(0)))
        }
        other => (a(0), format!("constraint violation '{other}' on {}", args.join(", "))),
    };
    Diagnostic {
        severity: Severity::Error,
        priority,
        code: code.to_string(),
        message,
        package: if package.is_empty() { None } else { Some(package) },
        provenance: Vec::new(),
    }
}

/// Extract and render the `error3`…`error6` atoms of a relaxed-phase model, deduping
/// symmetric `A vs B` pairs and sorting by descending priority (then message, for a
/// stable order).
pub fn diagnostics_from_model(model: &Model) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    for pred in ["error3", "error4", "error5", "error6"] {
        for atom in model.with_pred(pred) {
            let priority = arg_int(atom, 0);
            let code = arg_str(atom, 1);
            let mut args: Vec<String> = (2..atom.len()).map(|i| arg_str(atom, i)).collect();
            if symmetric(&code) {
                // `A vs B` and `B vs A` describe the same violation: canonicalize the
                // last two args so the duplicate collapses below.
                let n = args.len();
                if n >= 2 && args[n - 2] > args[n - 1] {
                    args.swap(n - 2, n - 1);
                }
            }
            let d = render(priority, &code, &args);
            if !diags.contains(&d) {
                diags.push(d);
            }
        }
    }
    diags.sort_by(|x, y| y.priority.cmp(&x.priority).then_with(|| x.message.cmp(&y.message)));
    diags
}

/// Render the minimized unsat core — the root requirements that cannot hold together —
/// as a diagnostic. `texts` are the requirements exactly as the user wrote them.
pub fn core_diagnostic(texts: &[String]) -> Option<Diagnostic> {
    match texts {
        [] => None,
        [single] => Some(Diagnostic {
            severity: Severity::Error,
            priority: 110,
            code: "unsat-requirement".to_string(),
            message: format!("the requirement `{single}` cannot be satisfied"),
            package: None,
            provenance: texts.to_vec(),
        }),
        many => Some(Diagnostic {
            severity: Severity::Error,
            priority: 110,
            code: "conflicting-requirements".to_string(),
            message: format!(
                "the requirements {} cannot all hold together",
                many.iter().map(|t| format!("`{t}`")).collect::<Vec<_>>().join(", ")
            ),
            package: None,
            provenance: texts.to_vec(),
        }),
    }
}

/// The diagnostic carried by a dead-lettered budget exhaustion: the solve hit its
/// wall deadline or conflict limit before optimality was proven. `partial_packages`
/// is the size of the best model proven before the cutoff, when there was one —
/// "a non-optimal answer exists" and "no answer at all" are triaged differently.
pub fn budget_diagnostic(roots: &str, partial_packages: Option<usize>) -> Diagnostic {
    let message = match partial_packages {
        Some(n) => format!(
            "the solve budget for `{roots}` was exhausted before optimality was proven \
             (best proven model has {n} packages)"
        ),
        None => format!("the solve budget for `{roots}` was exhausted before any model was found"),
    };
    Diagnostic {
        severity: Severity::Error,
        priority: 115,
        code: "budget-exhausted".to_string(),
        message,
        package: None,
        provenance: Vec::new(),
    }
}

/// The fallback diagnostic when neither the relaxed solve nor the core produced an
/// explanation (a structurally infeasible instance): still specific enough to point at
/// the input rather than a bare "no valid configuration exists".
pub fn structural_diagnostic(roots: &str) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        priority: 120,
        code: "structurally-unsatisfiable".to_string(),
        message: format!(
            "the request `{roots}` is unsatisfiable for every configuration of the \
             software model (no single requirement can be blamed)"
        ),
        package: None,
        provenance: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::{Control, SolverConfig};

    fn model_with(facts: &[(&str, Vec<Value>)]) -> Model {
        let mut ctl = Control::new(SolverConfig::default());
        for (pred, args) in facts {
            ctl.add_fact(pred, args);
        }
        ctl.add_program("ok.").unwrap();
        ctl.ground().unwrap();
        match ctl.solve().unwrap() {
            asp::SolveOutcome::Optimal { model, .. } => model,
            asp::SolveOutcome::Unsatisfiable => unreachable!("facts are satisfiable"),
        }
    }

    #[test]
    fn error_atoms_render_and_sort_by_priority() {
        let model = model_with(&[
            ("error3", vec![40.into(), "not-needed".into(), "bzip2".into()]),
            ("error4", vec![90.into(), "version-constraint".into(), "zlib".into(), "9.9".into()]),
        ]);
        let diags = diagnostics_from_model(&model);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, "version-constraint");
        assert_eq!(diags[0].message, "zlib: no known version satisfies the constraint @9.9");
        assert_eq!(diags[0].package.as_deref(), Some("zlib"));
        assert_eq!(diags[1].code, "not-needed");
    }

    #[test]
    fn symmetric_conflicts_are_deduped() {
        let model = model_with(&[
            (
                "error5",
                vec![95.into(), "version-conflict".into(), "p".into(), "1.0".into(), "2.0".into()],
            ),
            (
                "error5",
                vec![95.into(), "version-conflict".into(), "p".into(), "2.0".into(), "1.0".into()],
            ),
        ]);
        let diags = diagnostics_from_model(&model);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].message, "conflicting versions imposed on p: 1.0 vs 2.0");
    }

    #[test]
    fn core_diagnostics_name_the_requirements() {
        let one = core_diagnostic(&["zlib@9.9".to_string()]).unwrap();
        assert_eq!(one.message, "the requirement `zlib@9.9` cannot be satisfied");
        let two =
            core_diagnostic(&["example+bzip".to_string(), "^example~bzip".to_string()]).unwrap();
        assert!(two.message.contains("`example+bzip`"), "{}", two.message);
        assert!(two.message.contains("cannot all hold together"), "{}", two.message);
        assert_eq!(two.provenance.len(), 2);
        assert!(core_diagnostic(&[]).is_none());
    }
}

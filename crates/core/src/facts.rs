//! Fact generation (the "setup" phase of Section VII).
//!
//! This module translates a problem instance — package recipes, the site configuration,
//! the user's root specs, and optionally the installed-package database — into the input
//! facts consumed by `concretize.lp`. It is the analogue of Spack's `SpackSolverSetup`:
//! the paper notes a typical solve has 10k–100k facts, and that this phase (Python in
//! Spack, Rust here) dominates runtime for large buildcaches (Fig. 7e).
//!
//! Directives are encoded as *generalized conditions* (Section V-A): each directive gets
//! a unique integer ID, a set of `condition_requirementN` facts (what must hold for the
//! directive to trigger) and a set of `imposed_constraintN` facts (what holds once it
//! triggers).
//!
//! # Base vs. request facts (multi-shot sessions)
//!
//! The facts split cleanly along the session boundary:
//!
//! * **Base facts** — repository recipes, site configuration, and the installed
//!   database. They are identical for every request, cover the *whole* repository
//!   (the session serves arbitrary roots), and are emitted once by
//!   [`FactBuilder::base`], which also records an order-stable digest
//!   ([`asp::Control::fact_digest`]) usable as a cache key. Emission order is fully
//!   deterministic: every collection iterated here is a `BTreeMap`/`BTreeSet` or an
//!   ordered `Vec` — no hash-map iteration order can leak into the stream.
//! * **Request facts** — the user's root specs: `root`/`root_condition` facts, their
//!   impositions, and satisfies-map entries for constraint strings the base has not
//!   already emitted. Emitted per request by [`BaseFacts::request`] on a control
//!   forked from the frozen base.

use std::collections::{BTreeMap, BTreeSet};

use asp::Control;
use spack_repo::Repository;
use spack_spec::{Spec, Version, VersionConstraint};
use spack_store::Database;

use crate::config::SiteConfig;
use crate::ConcretizeError;

/// First generalized-condition id. Ids are opaque to the logic program, but sessions
/// exclude the conditions of out-of-closure packages *by id* through
/// [`asp::Control::restrict_ints`], which matches first-argument integers — so the id
/// range must never collide with any other first-position integer in the fact
/// vocabulary (error priorities and weights all stay far below this).
const CONDITION_ID_BASE: i64 = 10_000_000;

/// Summary of the generated problem instance.
#[derive(Debug, Clone, Default)]
pub struct SetupInfo {
    /// Packages that could possibly appear in the solution.
    pub possible_packages: usize,
    /// Number of generated facts.
    pub facts: usize,
    /// Number of generalized conditions.
    pub conditions: usize,
    /// Number of installed records encoded for reuse.
    pub installed: usize,
    /// Conditions arising from the user's root specs, as `(condition id, source text)`.
    /// The concretizer pins each one true through a solver assumption, so an UNSAT
    /// answer's core names the root requirements that cannot hold together.
    pub root_conditions: Vec<(i64, String)>,
}

/// The frozen snapshot of everything [`FactBuilder::base`] derived from repository,
/// site, and database: the constraint strings whose satisfies-maps are already
/// emitted, the known versions behind those maps, the base condition-id watermark,
/// and the base digest. Immutable and request-independent — one `BaseFacts` serves
/// every request of a session, from any thread.
#[derive(Debug, Clone)]
pub struct BaseFacts {
    site: SiteConfig,
    /// Non-virtual packages covered by the base (the whole repository).
    possible: BTreeSet<String>,
    /// Virtual package names covered by the base.
    virtuals: BTreeSet<String>,
    /// Compilers added beyond the site configuration because an installed record
    /// references them, keyed to the packages whose records introduced each — a
    /// request whose closure contains none of those packages excludes the compiler
    /// (one-shot solves never see it either).
    extra_compilers: BTreeMap<String, BTreeSet<String>>,
    /// Versions known per package (declared plus installed), for the satisfies maps.
    known_versions: BTreeMap<String, BTreeSet<Version>>,
    /// Constraint maps the base already emitted; requests skip these.
    version_constraints: BTreeSet<(String, String)>,
    compiler_constraints: BTreeSet<String>,
    target_constraints: BTreeSet<String>,
    /// Highest condition id used by the base; request ids start above it.
    condition_id: i64,
    /// Per-package `[start, end)` condition-id ranges, for id-based exclusion.
    condition_ranges: BTreeMap<String, (i64, i64)>,
    /// Package/virtual names that collide with some *other* fact vocabulary string
    /// (a variant name or value, a version, a site name, an installed hash, ...).
    /// Symbol exclusion drops atoms mentioning the symbol in ANY position, so
    /// excluding a collided name would delete in-closure facts that merely share the
    /// spelling; these names are never excluded. Over-inclusion is safe — an
    /// un-demanded package's atoms are inert in every model — exclusion of a collided
    /// symbol is not.
    never_exclude: BTreeSet<String>,
    /// Number of generalized conditions in the base.
    conditions: usize,
    /// Number of installed records encoded for reuse.
    installed: usize,
    /// Number of base facts emitted.
    facts: usize,
    /// Order-stable digest of the base fact stream (see [`asp::Control::fact_digest`]).
    digest: u64,
}

impl BaseFacts {
    /// The digest of the base fact stream — the session's cache key: identical
    /// repository + site + database inputs produce an identical digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Packages covered by the base problem.
    pub fn possible_packages(&self) -> usize {
        self.possible.len()
    }

    /// Installed records encoded for reuse.
    pub fn installed(&self) -> usize {
        self.installed
    }

    /// Number of base facts emitted.
    pub fn fact_count(&self) -> usize {
        self.facts
    }

    /// The site configuration these facts were emitted against — reused verbatim when
    /// a session re-emits the base stream for an in-place base patch
    /// ([`crate::ConcretizerSession::apply_base_delta`]).
    pub(crate) fn site(&self) -> &SiteConfig {
        &self.site
    }

    /// The owner-partition symbols for [`asp::Control::freeze_base_partitioned`]:
    /// every package and virtual name. Atoms and frozen instances bucket by the first
    /// of these they mention, which makes per-request relevance restriction
    /// ([`BaseFacts::request_exclusions`]) proportional to the kept closure.
    pub fn partition_symbols(&self) -> Vec<String> {
        self.possible.iter().chain(self.virtuals.iter()).cloned().collect()
    }

    /// What a request must *exclude* from its view of the frozen base — relevance
    /// restriction, computed from the request's possible-dependency closure (walked
    /// once): the name of every package and virtual outside the closure, the
    /// installed-record compilers none of whose owning packages are in the closure,
    /// and the `[start, end)` condition-id ranges of out-of-closure packages
    /// (id-keyed atoms — `condition(ID)`, `condition_holds(ID)`,
    /// requirement/imposition facts — carry no package symbol in every position, so
    /// symbol exclusion alone cannot drop them). Excluding all of this makes the
    /// per-request ground program identical in scope to a from-scratch solve of the
    /// same roots (which only ever emits facts for the closure).
    pub fn request_exclusions(
        &self,
        repo: &Repository,
        roots: &[Spec],
    ) -> (Vec<String>, Vec<(i64, i64)>) {
        let mut root_names: Vec<&str> = Vec::new();
        for root in roots {
            if let Some(name) = &root.name {
                root_names.push(name);
            }
            for dep in &root.dependencies {
                if let Some(name) = &dep.name {
                    root_names.push(name);
                }
            }
        }
        let closure = repo.possible_dependencies(&root_names);
        // Names colliding with other vocabulary strings are kept (over-inclusion is
        // inert; excluding a collided symbol would delete in-closure facts).
        let mut symbols: Vec<String> = Vec::new();
        for name in self.possible.iter().chain(self.virtuals.iter()) {
            if !closure.contains(name) && !self.never_exclude.contains(name) {
                symbols.push(name.clone());
            }
        }
        for (compiler_id, owners) in &self.extra_compilers {
            if !owners.iter().any(|o| closure.contains(o)) {
                symbols.push(compiler_id.clone());
            }
        }
        let mut id_ranges: Vec<(i64, i64)> = Vec::new();
        for (package, &(start, end)) in &self.condition_ranges {
            if !closure.contains(package) && !self.never_exclude.contains(package) {
                id_ranges.push((start, end));
            }
        }
        (symbols, id_ranges)
    }

    /// Emit one request's spec facts into a control forked from the frozen base:
    /// root facts, root-condition impositions, and satisfies-map entries for
    /// constraint strings the base did not already cover. Condition ids continue
    /// above the base watermark, so requests never collide with base conditions (and,
    /// being independent solves, not colliding with each other is irrelevant).
    pub fn request(
        &self,
        repo: &Repository,
        ctl: &mut asp::Control,
        roots: &[Spec],
    ) -> Result<SetupInfo, ConcretizeError> {
        for root in roots {
            let name = root.name.clone().ok_or_else(|| {
                ConcretizeError::Setup("root specs must name a package".to_string())
            })?;
            if repo.get(&name).is_none() && !repo.is_virtual(&name) {
                return Err(ConcretizeError::UnknownPackage(name));
            }
            for dep in &root.dependencies {
                if let Some(dep_name) = &dep.name {
                    if repo.get(dep_name).is_none() && !repo.is_virtual(dep_name) {
                        return Err(ConcretizeError::UnknownPackage(dep_name.clone()));
                    }
                }
            }
        }
        let mut builder = FactBuilder::new(repo, &self.site, None);
        builder.baseline = Some(self);
        builder.condition_id = self.condition_id;
        for root in roots {
            builder.root_facts(ctl, root)?;
        }
        builder.constraint_maps(ctl);
        Ok(SetupInfo {
            possible_packages: self.possible.len(),
            facts: ctl.fact_count(),
            conditions: self.conditions + builder.conditions,
            installed: self.installed,
            root_conditions: builder.root_conditions,
        })
    }
}

/// Generates facts into an [`asp::Control`].
pub struct FactBuilder<'a> {
    repo: &'a Repository,
    site: &'a SiteConfig,
    database: Option<&'a Database>,
    condition_id: i64,
    conditions: usize,
    /// (package, constraint string) pairs whose `version_satisfies_map` must be emitted.
    version_constraints: BTreeSet<(String, String)>,
    /// Compiler constraint strings (maps are global).
    compiler_constraints: BTreeSet<String>,
    /// Target constraint strings.
    target_constraints: BTreeSet<String>,
    /// Versions known per package (declared plus installed), for the satisfies maps.
    known_versions: BTreeMap<String, BTreeSet<Version>>,
    possible: BTreeSet<String>,
    root_conditions: Vec<(i64, String)>,
    /// Compilers added beyond the site configuration by installed records, with the
    /// packages whose records introduced them (see [`BaseFacts::extra_compilers`]).
    extra_compilers: BTreeMap<String, BTreeSet<String>>,
    /// Per-package `[start, end)` ranges of the condition ids allocated while
    /// emitting that package's recipe facts (base generation only).
    condition_ranges: BTreeMap<String, (i64, i64)>,
    /// When generating *request* facts on a session: the frozen base whose constraint
    /// maps are already emitted (skipped here) and whose known versions feed the maps
    /// for request-new constraints.
    baseline: Option<&'a BaseFacts>,
}

impl<'a> FactBuilder<'a> {
    /// Create a fact builder for a problem instance.
    pub fn new(repo: &'a Repository, site: &'a SiteConfig, database: Option<&'a Database>) -> Self {
        FactBuilder {
            repo,
            site,
            database,
            condition_id: CONDITION_ID_BASE,
            conditions: 0,
            version_constraints: BTreeSet::new(),
            compiler_constraints: BTreeSet::new(),
            target_constraints: BTreeSet::new(),
            known_versions: BTreeMap::new(),
            possible: BTreeSet::new(),
            root_conditions: Vec::new(),
            extra_compilers: BTreeMap::new(),
            condition_ranges: BTreeMap::new(),
            baseline: None,
        }
    }

    /// Generate the *base* half of a session's facts — site configuration, every
    /// package recipe in the repository, all virtual providers, and the installed
    /// database — and return the frozen [`BaseFacts`] snapshot (constraint-map
    /// baselines, condition-id watermark, digest). No root specs are involved: the
    /// base covers the whole repository so any later request is answerable.
    pub fn base(mut self, ctl: &mut asp::Control) -> Result<BaseFacts, ConcretizeError> {
        self.possible = self.repo.names().map(str::to_string).collect();
        let virtuals: BTreeSet<String> = self.repo.virtuals().map(str::to_string).collect();
        for v in &virtuals {
            self.possible.remove(v);
        }

        self.config_facts(ctl);
        let packages: Vec<String> = self.possible.iter().cloned().collect();
        for name in &packages {
            let start = self.next_condition_id();
            self.package_facts(ctl, name)?;
            self.condition_ranges.insert(name.clone(), (start, self.next_condition_id()));
        }
        for v in &virtuals {
            for (i, provider) in self.repo.providers(v).iter().enumerate() {
                if self.possible.contains(provider) {
                    ctl.add_fact(
                        "possible_provider",
                        &[v.as_str().into(), provider.as_str().into()],
                    );
                    ctl.add_fact(
                        "provider_weight",
                        &[v.as_str().into(), provider.as_str().into(), (i as i64).into()],
                    );
                }
            }
        }
        let installed = self.installed_facts(ctl);
        self.constraint_maps(ctl);

        // Names that double as other vocabulary strings must never be excluded (see
        // `BaseFacts::never_exclude`): collect every non-package string the base
        // vocabulary can contain and intersect with the package/virtual names.
        let mut reserved: BTreeSet<&str> = BTreeSet::new();
        let mut owned: Vec<String> = Vec::new();
        for pkg in self.repo.packages() {
            for decl in &pkg.versions {
                owned.push(decl.version.to_string());
            }
            for variant in &pkg.variants {
                reserved.insert(&variant.name);
                owned.push(variant.default.as_str());
                for value in &variant.values {
                    reserved.insert(value);
                }
            }
        }
        for os in &self.site.operating_systems {
            reserved.insert(os.name());
        }
        for info in self.site.available_targets() {
            owned.push(info.target.name().to_string());
        }
        for compiler in &self.site.compilers {
            owned.push(SiteConfig::compiler_id(compiler));
        }
        if let Some(db) = self.database {
            for record in db.iter() {
                reserved.insert(&record.hash);
                owned.push(record.version.to_string());
                owned.push(SiteConfig::compiler_id(&record.compiler));
                for value in record.variants.values() {
                    owned.push(value.as_str());
                }
            }
        }
        for (_, constraint) in &self.version_constraints {
            reserved.insert(constraint);
        }
        for constraint in self.compiler_constraints.iter().chain(&self.target_constraints) {
            reserved.insert(constraint);
        }
        for s in &owned {
            reserved.insert(s);
        }
        let never_exclude: BTreeSet<String> = self
            .possible
            .iter()
            .chain(virtuals.iter())
            .filter(|name| reserved.contains(name.as_str()))
            .cloned()
            .collect();

        Ok(BaseFacts {
            site: self.site.clone(),
            possible: self.possible,
            virtuals,
            extra_compilers: self.extra_compilers,
            known_versions: self.known_versions,
            version_constraints: self.version_constraints,
            compiler_constraints: self.compiler_constraints,
            target_constraints: self.target_constraints,
            condition_id: self.condition_id,
            conditions: self.conditions,
            condition_ranges: self.condition_ranges,
            never_exclude,
            installed,
            facts: ctl.fact_count(),
            digest: ctl.fact_digest(),
        })
    }

    /// Generate all facts for the given root specs into `ctl`.
    pub fn generate(
        mut self,
        ctl: &mut Control,
        roots: &[Spec],
    ) -> Result<SetupInfo, ConcretizeError> {
        // 1. Determine the possible-package set.
        let mut root_names = Vec::new();
        for root in roots {
            let name = root.name.clone().ok_or_else(|| {
                ConcretizeError::Setup("root specs must name a package".to_string())
            })?;
            if self.repo.get(&name).is_none() && !self.repo.is_virtual(&name) {
                return Err(ConcretizeError::UnknownPackage(name));
            }
            root_names.push(name);
            for dep in &root.dependencies {
                if let Some(dep_name) = &dep.name {
                    if self.repo.get(dep_name).is_none() && !self.repo.is_virtual(dep_name) {
                        return Err(ConcretizeError::UnknownPackage(dep_name.clone()));
                    }
                    root_names.push(dep_name.clone());
                }
            }
        }
        let root_refs: Vec<&str> = root_names.iter().map(|s| s.as_str()).collect();
        self.possible = self.repo.possible_dependencies(&root_refs);
        // Remove virtuals from the package set (they have their own facts).
        let virtuals: BTreeSet<String> =
            self.possible.iter().filter(|n| self.repo.is_virtual(n)).cloned().collect();
        for v in &virtuals {
            self.possible.remove(v);
        }

        // 2. Site configuration facts.
        self.config_facts(ctl);

        // 3. Package facts and directive conditions.
        let packages: Vec<String> = self.possible.iter().cloned().collect();
        for name in &packages {
            self.package_facts(ctl, name)?;
        }

        // 4. Virtual provider facts.
        for v in &virtuals {
            for (i, provider) in self.repo.providers(v).iter().enumerate() {
                if self.possible.contains(provider) {
                    ctl.add_fact(
                        "possible_provider",
                        &[v.as_str().into(), provider.as_str().into()],
                    );
                    ctl.add_fact(
                        "provider_weight",
                        &[v.as_str().into(), provider.as_str().into(), (i as i64).into()],
                    );
                }
            }
        }

        // 5. Root specs.
        for root in roots {
            self.root_facts(ctl, root)?;
        }

        // 6. Installed database (reuse).
        let installed = self.installed_facts(ctl);

        // 7. Constraint satisfaction maps.
        self.constraint_maps(ctl);

        Ok(SetupInfo {
            possible_packages: packages.len(),
            facts: ctl.fact_count(),
            conditions: self.conditions,
            installed,
            root_conditions: self.root_conditions.clone(),
        })
    }

    // ---- site configuration --------------------------------------------------------------

    fn config_facts(&mut self, ctl: &mut Control) {
        ctl.add_fact("platform", &[self.site.platform.as_str().into()]);
        for (i, os) in self.site.operating_systems.iter().enumerate() {
            ctl.add_fact("os", &[os.name().into()]);
            ctl.add_fact("os_weight", &[os.name().into(), (i as i64).into()]);
        }
        let targets = self.site.available_targets();
        for info in &targets {
            ctl.add_fact("target", &[info.target.name().into()]);
            ctl.add_fact(
                "target_weight",
                &[info.target.name().into(), (info.weight as i64).into()],
            );
        }
        for (i, compiler) in self.site.compilers.iter().enumerate() {
            let id = SiteConfig::compiler_id(compiler);
            ctl.add_fact("compiler", &[id.as_str().into()]);
            ctl.add_fact("compiler_weight", &[id.as_str().into(), (i as i64).into()]);
            for info in &targets {
                if self.site.targets.compiler_supports(
                    &compiler.name,
                    &compiler.version,
                    info.target.name(),
                ) {
                    ctl.add_fact(
                        "compiler_supports_target",
                        &[id.as_str().into(), info.target.name().into()],
                    );
                }
            }
        }
    }

    // ---- package metadata ------------------------------------------------------------------

    fn package_facts(&mut self, ctl: &mut Control, name: &str) -> Result<(), ConcretizeError> {
        let pkg = match self.repo.get(name) {
            Some(p) => p,
            None => return Ok(()), // virtual or external; no recipe facts
        };
        ctl.add_fact("possible_node", &[name.into()]);

        // Versions, sorted newest first so the weight reflects "oldness" (Table II).
        let mut versions: Vec<_> = pkg.versions.clone();
        versions.sort_by(|a, b| b.version.cmp(&a.version));
        for (weight, decl) in versions.iter().enumerate() {
            let vstr = decl.version.to_string();
            ctl.add_fact(
                "version_declared",
                &[name.into(), vstr.as_str().into(), (weight as i64).into()],
            );
            if decl.deprecated {
                ctl.add_fact("deprecated_version", &[name.into(), vstr.as_str().into()]);
            }
            self.known_versions.entry(name.to_string()).or_default().insert(decl.version.clone());
        }

        // Variants.
        for variant in &pkg.variants {
            ctl.add_fact("variant", &[name.into(), variant.name.as_str().into()]);
            let kind = if variant.values.is_empty() { "bool" } else { "multi" };
            ctl.add_fact("variant_kind", &[name.into(), variant.name.as_str().into(), kind.into()]);
            let default = variant.default.as_str();
            ctl.add_fact(
                "variant_default",
                &[name.into(), variant.name.as_str().into(), default.as_str().into()],
            );
            let mut values: Vec<String> = if variant.values.is_empty() {
                vec!["true".to_string(), "false".to_string()]
            } else {
                variant.values.clone()
            };
            if !values.contains(&default) {
                values.push(default.clone());
            }
            for value in values {
                ctl.add_fact(
                    "variant_possible_value",
                    &[name.into(), variant.name.as_str().into(), value.as_str().into()],
                );
            }
        }

        // Dependencies.
        for dep in &pkg.dependencies {
            let dep_name = dep.spec.name.clone().expect("dependency specs are named");
            let id = self.new_condition(ctl);
            self.require_node(ctl, id, name);
            self.add_spec_requirements(ctl, id, name, &dep.when);
            if self.repo.is_virtual(&dep_name) {
                ctl.add_fact(
                    "virtual_dependency_condition",
                    &[id.into(), name.into(), dep_name.as_str().into()],
                );
            } else {
                ctl.add_fact(
                    "dependency_condition",
                    &[id.into(), name.into(), dep_name.as_str().into()],
                );
                self.add_spec_impositions(ctl, id, &dep_name, &dep.spec);
            }
        }

        // Conflicts. Each carries a human-readable description so a triggered conflict
        // can be rendered as a diagnostic naming the offending directive.
        for conflict in &pkg.conflicts {
            let id = self.new_condition(ctl);
            ctl.add_fact("conflict_condition", &[id.into()]);
            let when = conflict.when.to_string();
            let msg = if when.is_empty() {
                format!("conflicts with {}", conflict.spec)
            } else {
                format!("{when} conflicts with {}", conflict.spec)
            };
            ctl.add_fact("conflict_info", &[id.into(), name.into(), msg.as_str().into()]);
            self.require_node(ctl, id, name);
            self.add_spec_requirements(ctl, id, name, &conflict.when);
            self.add_spec_requirements(ctl, id, name, &conflict.spec);
        }

        // Provides.
        for provides in &pkg.provides {
            let id = self.new_condition(ctl);
            self.require_node(ctl, id, name);
            self.add_spec_requirements(ctl, id, name, &provides.when);
            ctl.add_fact(
                "imposed_constraint3",
                &[
                    id.into(),
                    "provides_ok".into(),
                    provides.virtual_name.as_str().into(),
                    name.into(),
                ],
            );
        }
        Ok(())
    }

    // ---- root specs ---------------------------------------------------------------------------

    fn root_facts(&mut self, ctl: &mut Control, root: &Spec) -> Result<(), ConcretizeError> {
        let name = root.name.clone().expect("validated in generate()");
        if self.repo.is_virtual(&name) {
            ctl.add_fact("root_requirement_virtual", &[name.as_str().into()]);
        } else {
            ctl.add_fact("root", &[name.as_str().into()]);
            // Impose the root's own constraints, conditional only on it being a node
            // (which it always is). The condition is assumption-guarded: its id goes
            // into the unsat core when the constraint cannot hold.
            let mut bare = root.clone();
            bare.dependencies.clear();
            let id = self.new_root_condition(ctl, &bare.to_string());
            self.require_node(ctl, id, &name);
            self.add_spec_impositions(ctl, id, &name, root);
        }
        // ^dependency constraints: force the named package into the DAG and impose its
        // constraints on it.
        for dep in &root.dependencies {
            let dep_name = dep.name.clone().ok_or_else(|| {
                ConcretizeError::Setup("anonymous ^ constraints are not supported".to_string())
            })?;
            if self.repo.is_virtual(&dep_name) {
                ctl.add_fact("root_requirement_virtual", &[dep_name.as_str().into()]);
            } else {
                ctl.add_fact("root_requirement_node", &[dep_name.as_str().into()]);
                let id = self.new_root_condition(ctl, &format!("^{dep}"));
                self.require_node(ctl, id, &dep_name);
                self.add_spec_impositions(ctl, id, &dep_name, dep);
            }
        }
        Ok(())
    }

    // ---- installed database (reuse) ------------------------------------------------------------

    fn installed_facts(&mut self, ctl: &mut Control) -> usize {
        let database = match self.database {
            Some(db) => db,
            None => return 0,
        };
        let mut count = 0;
        for record in database.iter() {
            if !self.possible.contains(&record.name) {
                continue;
            }
            // Only offer installations for this platform.
            if record.platform != self.site.platform {
                continue;
            }
            count += 1;
            let hash = record.hash.as_str();
            let name = record.name.as_str();
            ctl.add_fact("installed_hash", &[name.into(), hash.into()]);
            // Adopted attributes go through the `*_set` demand indirection (see
            // concretize.lp): the node's chosen attribute must *agree* with the
            // installation's, and a disagreement is a relaxable error rather than a
            // hard choice-bound violation. Keeping demands off the choice atoms also
            // keeps the grounding small — no pairwise chosen-vs-chosen conflict rules.
            let version = record.version.to_string();
            ctl.add_fact(
                "hash_attr3",
                &["version_set".into(), hash.into(), name.into(), version.as_str().into()],
            );
            self.known_versions
                .entry(record.name.clone())
                .or_default()
                .insert(record.version.clone());
            let compiler_id = SiteConfig::compiler_id(&record.compiler);
            ctl.add_fact(
                "hash_attr3",
                &["compiler_set".into(), hash.into(), name.into(), compiler_id.as_str().into()],
            );
            // Compilers not present in the site configuration are added with a low
            // preference so reused specs referencing them remain representable, and
            // their installed artifacts vouch for their targets. Site compilers'
            // target support comes from the site configuration alone: a record must
            // not widen it, because `compiler_supports_target(C, T)` carries no
            // package symbol — a session's relevance restriction could never drop a
            // pair vouched for only by an out-of-closure record, and session and
            // one-shot solves would diverge. (Extra compilers are excludable as a
            // whole through their id symbol when no owning package is in a request's
            // closure.)
            if !self.site.compilers.contains(&record.compiler) {
                self.extra_compilers
                    .entry(compiler_id.clone())
                    .or_default()
                    .insert(record.name.clone());
                ctl.add_fact("compiler", &[compiler_id.as_str().into()]);
                ctl.add_fact(
                    "compiler_weight",
                    &[compiler_id.as_str().into(), (self.site.compilers.len() as i64).into()],
                );
                ctl.add_fact(
                    "compiler_supports_target",
                    &[compiler_id.as_str().into(), record.target.as_str().into()],
                );
            }
            ctl.add_fact(
                "hash_attr3",
                &["node_os_set".into(), hash.into(), name.into(), record.os.as_str().into()],
            );
            ctl.add_fact(
                "hash_attr3",
                &[
                    "node_platform_set".into(),
                    hash.into(),
                    name.into(),
                    record.platform.as_str().into(),
                ],
            );
            ctl.add_fact(
                "hash_attr3",
                &[
                    "node_target_set".into(),
                    hash.into(),
                    name.into(),
                    record.target.as_str().into(),
                ],
            );
            for (variant, value) in &record.variants {
                ctl.add_fact(
                    "hash_attr4",
                    &[
                        "variant_set".into(),
                        hash.into(),
                        name.into(),
                        variant.as_str().into(),
                        value.as_str().as_str().into(),
                    ],
                );
            }
            for virtual_name in &record.provides {
                ctl.add_fact(
                    "hash_attr3",
                    &["provides_ok".into(), hash.into(), virtual_name.as_str().into(), name.into()],
                );
            }
            for (dep_name, dep_hash) in &record.deps {
                // Skip dangling dependency references (e.g. a pruned mirror): reusing this
                // record then simply falls back to resolving that dependency normally.
                if self.possible.contains(dep_name) && database.get(dep_hash).is_some() {
                    ctl.add_fact(
                        "hash_depends_on",
                        &[
                            hash.into(),
                            name.into(),
                            dep_name.as_str().into(),
                            dep_hash.as_str().into(),
                        ],
                    );
                }
            }
        }
        count
    }

    // ---- constraint helpers -----------------------------------------------------------------

    fn new_condition(&mut self, ctl: &mut Control) -> i64 {
        self.condition_id += 1;
        self.conditions += 1;
        ctl.add_fact("condition", &[self.condition_id.into()]);
        self.condition_id
    }

    /// The next condition id this builder would allocate (used to delimit
    /// per-package id ranges while emitting base facts).
    fn next_condition_id(&self) -> i64 {
        self.condition_id + 1
    }

    /// A condition owned by the user's root specs: emitted as `root_condition(ID, Text)`
    /// instead of a plain `condition(ID)` fact, so the logic program can guard it behind
    /// a free `assumed(ID)` choice that the concretizer pins with solver assumptions.
    fn new_root_condition(&mut self, ctl: &mut Control, text: &str) -> i64 {
        self.condition_id += 1;
        self.conditions += 1;
        ctl.add_fact("root_condition", &[self.condition_id.into(), text.into()]);
        self.root_conditions.push((self.condition_id, text.to_string()));
        self.condition_id
    }

    fn require_node(&mut self, ctl: &mut Control, id: i64, package: &str) {
        ctl.add_fact("condition_requirement2", &[id.into(), "node".into(), package.into()]);
    }

    /// Add `condition_requirementN` facts for every constraint piece of `spec`, applied to
    /// `subject` (or to the package the spec names, for `^dep` pieces).
    fn add_spec_requirements(&mut self, ctl: &mut Control, id: i64, subject: &str, spec: &Spec) {
        let target_pkg = spec.name.as_deref().unwrap_or(subject).to_string();
        if spec.name.is_some() && spec.name.as_deref() != Some(subject) {
            // A named constraint inside a when= clause refers to that package being in
            // the DAG (e.g. `when="+openmp ^openblas"` on berkeleygw).
            self.require_node(ctl, id, &target_pkg);
        }
        self.spec_pieces(ctl, id, &target_pkg, spec, true);
        for dep in &spec.dependencies {
            let dep_name = match &dep.name {
                Some(n) => n.clone(),
                None => continue,
            };
            self.require_node(ctl, id, &dep_name);
            self.spec_pieces(ctl, id, &dep_name, dep, true);
        }
    }

    /// Add `imposed_constraintN` facts for every constraint piece of `spec`, applied to
    /// `subject`.
    fn add_spec_impositions(&mut self, ctl: &mut Control, id: i64, subject: &str, spec: &Spec) {
        self.spec_pieces(ctl, id, subject, spec, false);
    }

    fn spec_pieces(
        &mut self,
        ctl: &mut Control,
        id: i64,
        package: &str,
        spec: &Spec,
        requirement: bool,
    ) {
        let pred3 = if requirement { "condition_requirement3" } else { "imposed_constraint3" };
        let pred4 = if requirement { "condition_requirement4" } else { "imposed_constraint4" };
        if !spec.versions.is_any() {
            let constraint = spec.versions.to_string();
            self.version_constraints.insert((package.to_string(), constraint.clone()));
            ctl.add_fact(
                pred3,
                &[
                    id.into(),
                    "version_satisfies".into(),
                    package.into(),
                    constraint.as_str().into(),
                ],
            );
        }
        // Requirements *test* the chosen variant value; impositions go through the
        // `variant_set` indirection so two conflicting demands surface as a
        // `variant-conflict` error instead of tripping the choice bound (which would
        // be a hard, unexplainable UNSAT).
        let variant_attr = if requirement { "variant_value" } else { "variant_set" };
        for (variant, value) in &spec.variants {
            ctl.add_fact(
                pred4,
                &[
                    id.into(),
                    variant_attr.into(),
                    package.into(),
                    variant.as_str().into(),
                    value.as_str().as_str().into(),
                ],
            );
        }
        if let Some(compiler) = &spec.compiler {
            let constraint = compiler.to_string();
            self.compiler_constraints.insert(constraint.clone());
            ctl.add_fact(
                pred3,
                &[
                    id.into(),
                    "compiler_satisfies".into(),
                    package.into(),
                    constraint.as_str().into(),
                ],
            );
        }
        if let Some(target) = &spec.target {
            self.target_constraints.insert(target.clone());
            ctl.add_fact(
                pred3,
                &[id.into(), "target_satisfies".into(), package.into(), target.as_str().into()],
            );
        }
        // Requirements test the chosen os/platform; impositions demand one through the
        // `*_set` indirection (same pattern as variants — see above).
        if let Some(os) = &spec.os {
            let os_attr = if requirement { "node_os" } else { "node_os_set" };
            ctl.add_fact(pred3, &[id.into(), os_attr.into(), package.into(), os.as_str().into()]);
        }
        if let Some(platform) = &spec.platform {
            let platform_attr = if requirement { "node_platform" } else { "node_platform_set" };
            ctl.add_fact(
                pred3,
                &[id.into(), platform_attr.into(), package.into(), platform.as_str().into()],
            );
        }
    }

    // ---- constraint satisfaction maps -------------------------------------------------------

    /// Versions known for `package`: locally collected ones, falling back to the
    /// frozen base's (session requests collect none of their own — the base already
    /// knows every declared and installed version).
    fn known_versions_of(&self, package: &str) -> Option<&BTreeSet<Version>> {
        self.known_versions
            .get(package)
            .or_else(|| self.baseline.and_then(|b| b.known_versions.get(package)))
    }

    fn constraint_maps(&mut self, ctl: &mut Control) {
        // version_satisfies_map(P, Constraint, V) for every known version in range.
        for pair in &self.version_constraints {
            // Maps the frozen base already emitted must not be emitted again.
            if self.baseline.is_some_and(|b| b.version_constraints.contains(pair)) {
                continue;
            }
            let (package, constraint) = pair;
            let vc = VersionConstraint::parse(constraint);
            if let Some(versions) = self.known_versions_of(package) {
                for v in versions {
                    if vc.satisfies(v) {
                        ctl.add_fact(
                            "version_satisfies_map",
                            &[
                                package.as_str().into(),
                                constraint.as_str().into(),
                                v.to_string().as_str().into(),
                            ],
                        );
                    }
                }
            }
        }
        // compiler_satisfies_map(Constraint, CompilerId).
        for constraint in &self.compiler_constraints {
            if self.baseline.is_some_and(|b| b.compiler_constraints.contains(constraint)) {
                continue;
            }
            let parsed = spack_spec::parse_spec(constraint).ok();
            let cspec = parsed.and_then(|s| s.compiler);
            for compiler in &self.site.compilers {
                let ok = match &cspec {
                    Some(cs) => cs.satisfied_by(&compiler.name, &compiler.version),
                    None => false,
                };
                if ok {
                    ctl.add_fact(
                        "compiler_satisfies_map",
                        &[
                            constraint.as_str().into(),
                            SiteConfig::compiler_id(compiler).as_str().into(),
                        ],
                    );
                }
            }
        }
        // target_satisfies_map(Constraint, Target): exact name, family membership, or a
        // trailing-colon family range like `aarch64:`.
        for constraint in &self.target_constraints {
            if self.baseline.is_some_and(|b| b.target_constraints.contains(constraint)) {
                continue;
            }
            let base = constraint.trim_end_matches(':');
            for info in self.site.available_targets() {
                let t = info.target.name();
                if t == base || info.family == base {
                    ctl.add_fact("target_satisfies_map", &[constraint.as_str().into(), t.into()]);
                }
            }
        }
    }
}

/// Convenience wrapper: create a control, generate facts, and return both.
pub fn setup_problem(
    repo: &Repository,
    site: &SiteConfig,
    database: Option<&Database>,
    roots: &[Spec],
    config: asp::SolverConfig,
) -> Result<(Control, SetupInfo), ConcretizeError> {
    let mut ctl = Control::new(config);
    let info = FactBuilder::new(repo, site, database).generate(&mut ctl, roots)?;
    Ok((ctl, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_repo::builtin_repo;
    use spack_spec::parse_spec;

    fn count_facts(roots: &[&str], database: Option<&Database>) -> (Control, SetupInfo) {
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        let specs: Vec<Spec> = roots.iter().map(|r| parse_spec(r).unwrap()).collect();
        setup_problem(&repo, &site, database, &specs, asp::SolverConfig::default()).unwrap()
    }

    #[test]
    fn zlib_generates_compact_instance() {
        let (ctl, info) = count_facts(&["zlib"], None);
        assert_eq!(info.possible_packages, 1);
        assert!(ctl.fact_count() > 20, "config + package facts expected");
        assert!(info.installed == 0);
    }

    #[test]
    fn hdf5_pulls_in_mpi_providers() {
        let (_, info) = count_facts(&["hdf5"], None);
        assert!(info.possible_packages > 20, "got {}", info.possible_packages);
        assert!(info.conditions > 30);
    }

    #[test]
    fn unknown_package_is_an_error() {
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        let spec = parse_spec("no-such-package").unwrap();
        let err = setup_problem(&repo, &site, None, &[spec], asp::SolverConfig::default());
        assert!(matches!(err, Err(ConcretizeError::UnknownPackage(_))));
    }

    #[test]
    fn installed_records_become_hash_facts() {
        let repo = builtin_repo();
        let db =
            spack_store::synthesize_buildcache(&repo, &spack_store::BuildcacheConfig::default());
        let (ctl, info) = count_facts(&["hdf5"], Some(&db));
        assert!(info.installed > 0);
        // The fact count grows roughly proportionally to the cache size (Section VII-C).
        let (ctl_nocache, _) = count_facts(&["hdf5"], None);
        assert!(ctl.fact_count() > ctl_nocache.fact_count() * 2);
    }

    #[test]
    fn base_fact_digest_is_stable_across_builds() {
        // Satellite of the session work: two builds of the same repo + site + cache
        // must produce byte-identical base fact streams (no hash-map iteration order
        // can leak), asserted through the order-sensitive digest.
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        let db =
            spack_store::synthesize_buildcache(&repo, &spack_store::BuildcacheConfig::default());
        let build = || {
            let mut ctl = asp::Control::new(asp::SolverConfig::default());
            let base = FactBuilder::new(&repo, &site, Some(&db)).base(&mut ctl).unwrap();
            (base.digest(), ctl.fact_count())
        };
        let (d1, n1) = build();
        let (d2, n2) = build();
        assert_eq!(n1, n2, "fact counts must agree");
        assert_eq!(d1, d2, "base digests must be identical across builds");
        assert_ne!(d1, 0, "digest must be computed");

        // A different database must change the digest (it is a cache *key*).
        let mut ctl = asp::Control::new(asp::SolverConfig::default());
        let no_db = FactBuilder::new(&repo, &site, None).base(&mut ctl).unwrap();
        assert_ne!(no_db.digest(), d1);
    }

    #[test]
    fn base_covers_the_whole_repository() {
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        let mut ctl = asp::Control::new(asp::SolverConfig::default());
        let base = FactBuilder::new(&repo, &site, None).base(&mut ctl).unwrap();
        assert_eq!(base.possible_packages(), repo.len());
        // Request facts ride on top: root conditions continue above the base ids.
        let spec = parse_spec("hdf5@1.10:").unwrap();
        let info = base.request(&repo, &mut ctl, std::slice::from_ref(&spec)).unwrap();
        assert_eq!(info.root_conditions.len(), 1);
        assert!(info.root_conditions[0].0 > 0);
        assert!(info.conditions > base.possible_packages(), "base + request conditions");
    }

    #[test]
    fn request_facts_skip_constraints_the_base_emitted() {
        // A root constraint string that also appears in a recipe directive must not
        // re-emit its satisfies map (the frozen base already has those facts).
        let repo = builtin_repo();
        let site = SiteConfig::quartz();
        let mut base_ctl = asp::Control::new(asp::SolverConfig::default());
        let base = FactBuilder::new(&repo, &site, None).base(&mut base_ctl).unwrap();
        let count_request_facts = |text: &str| {
            let mut ctl = asp::Control::new(asp::SolverConfig::default());
            let spec = parse_spec(text).unwrap();
            base.request(&repo, &mut ctl, &[spec]).unwrap();
            ctl.fact_count()
        };
        // `zlib@1.2.8:` is a recipe constraint (bzip2 depends on it); a fresh
        // constraint string like `@1.2.11:` needs new map entries on top.
        let reused = count_request_facts("bzip2 ^zlib@1.2.8:");
        let fresh = count_request_facts("bzip2 ^zlib@1.2.11:");
        assert!(
            fresh > reused,
            "fresh constraint must add map facts: fresh={fresh} reused={reused}"
        );
    }

    #[test]
    fn version_constraints_produce_maps() {
        let (ctl, _) = count_facts(&["example@1.0.0"], None);
        // The dependency `bzip2@1.0.7:` of example plus the root constraint must both
        // appear; we can't inspect facts directly via Control, but the count reflects
        // the maps (several per constraint).
        assert!(ctl.fact_count() > 100);
    }
}

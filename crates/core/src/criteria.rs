//! Spack's optimization criteria (Table II of the paper) and the build/reuse bucket
//! scheme (Fig. 5).
//!
//! All criteria are minimization criteria evaluated lexicographically. Criterion 1
//! (deprecated versions) is the most important. With reuse enabled, every criterion is
//! split into two buckets: contributions from packages that must be *built* land in a
//! high-priority bucket (`priority + BUILD_PRIORITY_OFFSET`), contributions from packages
//! that are *reused* land in the low-priority bucket, and the total number of builds sits
//! between the two bucket groups at [`BUILD_COUNT_PRIORITY`].
//!
//! # Table II — criterion ↔ priority ↔ bucket map
//!
//! Each rank `r` of Table II becomes the ASP priority `16 - r` for contributions from
//! *reused* packages and `16 - r + 200` for contributions from *built* packages
//! (Fig. 5); the corresponding `#minimize` statement in `concretize.lp` writes the
//! priority as `base + Prio` with `Prio` bound by `build_priority/2`.
//!
//! | rank | criterion (Table II)                  | scope     | reuse prio | build prio | `concretize.lp` source      |
//! |------|---------------------------------------|-----------|-----------:|-----------:|-----------------------------|
//! | 1    | Deprecated versions used              | all       | 15         | 215        | `deprecated_version/2`      |
//! | 2    | Version oldness (roots)               | roots     | 14         | 214        | `version_weight/3`          |
//! | 3    | Non-default variant values (roots)    | roots     | 13         | 213        | `variant_not_default/2`     |
//! | 4    | Non-preferred providers (roots)       | roots     | 12         | 212        | `provider_weight_used/3`    |
//! | 5    | Unused default variant values (roots) | roots     | 11         | 211        | `default_unused/2`          |
//! | 6    | Non-default variant values (non-roots)| non-roots | 10         | 210        | `variant_not_default/2`     |
//! | 7    | Non-preferred providers (non-roots)   | non-roots | 9          | 209        | `provider_weight_used/3`    |
//! | 8    | Compiler mismatches                   | all edges | 8          | 208        | `compiler_mismatch/2`       |
//! | 9    | OS mismatches                         | all edges | 7          | 207        | `os_mismatch/2`             |
//! | 10   | Non-preferred OS's                    | all       | 6          | 206        | `node_os_weight/2`          |
//! | 11   | Version oldness (non-roots)           | non-roots | 5          | 205        | `version_weight/3`          |
//! | 12   | Unused default variant values (n-r)   | non-roots | 4          | 204        | `default_unused/2`          |
//! | 13   | Non-preferred compilers               | all       | 3          | 203        | `node_compiler_weight/2`    |
//! | 14   | Target mismatches                     | all edges | 2          | 202        | `target_mismatch/2`         |
//! | 15   | Non-preferred targets                 | all       | 1          | 201        | `node_target_weight/2`      |
//!
//! Between the build bucket (201–215) and the reuse bucket (1–15) sits the **number of
//! builds** at priority [`BUILD_COUNT_PRIORITY`] (= 100): criteria for built packages
//! outrank minimizing builds (a built `cmake` still gets `+ssl`, Section VI), while
//! criteria for reused packages only break ties among maximal-reuse solutions.

/// Offset added to a criterion's priority for packages that must be built (Fig. 5).
pub const BUILD_PRIORITY_OFFSET: i64 = 200;

/// Priority level of the "number of builds" objective, between the build buckets
/// (201–215) and the reuse buckets (1–15).
pub const BUILD_COUNT_PRIORITY: i64 = 100;

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Criterion {
    /// 1-based rank as listed in Table II (1 = highest priority).
    pub rank: u8,
    /// Human-readable description, as in the paper.
    pub description: &'static str,
    /// Whether the criterion applies to root nodes, non-root nodes, or all nodes.
    pub scope: Scope,
}

/// Which nodes a criterion applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Root nodes only.
    Roots,
    /// Non-root nodes only.
    NonRoots,
    /// Every node or edge.
    All,
}

/// The 15 criteria of Table II, in priority order (highest first).
pub const CRITERIA: [Criterion; 15] = [
    Criterion { rank: 1, description: "Deprecated versions used", scope: Scope::All },
    Criterion { rank: 2, description: "Version oldness (roots)", scope: Scope::Roots },
    Criterion { rank: 3, description: "Non-default variant values (roots)", scope: Scope::Roots },
    Criterion { rank: 4, description: "Non-preferred providers (roots)", scope: Scope::Roots },
    Criterion {
        rank: 5,
        description: "Unused default variant values (roots)",
        scope: Scope::Roots,
    },
    Criterion {
        rank: 6,
        description: "Non-default variant values (non-roots)",
        scope: Scope::NonRoots,
    },
    Criterion {
        rank: 7,
        description: "Non-preferred providers (non-roots)",
        scope: Scope::NonRoots,
    },
    Criterion { rank: 8, description: "Compiler mismatches", scope: Scope::All },
    Criterion { rank: 9, description: "OS mismatches", scope: Scope::All },
    Criterion { rank: 10, description: "Non-preferred OS's", scope: Scope::All },
    Criterion { rank: 11, description: "Version oldness (non-roots)", scope: Scope::NonRoots },
    Criterion {
        rank: 12,
        description: "Unused default variant values (non-roots)",
        scope: Scope::NonRoots,
    },
    Criterion { rank: 13, description: "Non-preferred compilers", scope: Scope::All },
    Criterion { rank: 14, description: "Target mismatches", scope: Scope::All },
    Criterion { rank: 15, description: "Non-preferred targets", scope: Scope::All },
];

impl Criterion {
    /// The ASP priority of this criterion's *reuse* bucket: rank 1 → 15, rank 15 → 1.
    pub fn reuse_priority(&self) -> i64 {
        16 - self.rank as i64
    }

    /// The ASP priority of this criterion's *build* bucket (Fig. 5).
    pub fn build_priority(&self) -> i64 {
        self.reuse_priority() + BUILD_PRIORITY_OFFSET
    }
}

/// Look up a criterion by its Table II rank.
pub fn criterion(rank: u8) -> Option<&'static Criterion> {
    CRITERIA.iter().find(|c| c.rank == rank)
}

/// Describe an objective-vector entry (an ASP priority level) in terms of Table II, for
/// reporting: returns `(bucket, criterion description)`. Levels at 1000 and above are
/// the relaxed-phase `error(Priority, Msg, Args)` levels (see
/// [`crate::diagnose`]), which rank above every ordinary criterion.
pub fn describe_priority(priority: i64) -> (&'static str, &'static str) {
    if priority >= 1000 {
        return ("error", "Model-rule violations (unsat diagnostics)");
    }
    if priority == BUILD_COUNT_PRIORITY {
        return ("builds", "Number of builds");
    }
    let (bucket, base) = if priority > BUILD_PRIORITY_OFFSET {
        ("build", priority - BUILD_PRIORITY_OFFSET)
    } else {
        ("reuse", priority)
    };
    let rank = (16 - base).clamp(1, 15) as u8;
    (bucket, criterion(rank).map(|c| c.description).unwrap_or("unknown criterion"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_15_criteria_in_order() {
        assert_eq!(CRITERIA.len(), 15);
        for (i, c) in CRITERIA.iter().enumerate() {
            assert_eq!(c.rank as usize, i + 1);
        }
        assert_eq!(CRITERIA[0].description, "Deprecated versions used");
        assert_eq!(CRITERIA[14].description, "Non-preferred targets");
    }

    #[test]
    fn priorities_follow_fig5() {
        // Build buckets (201..215) > number of builds (100) > reuse buckets (1..15).
        let c1 = criterion(1).unwrap();
        let c15 = criterion(15).unwrap();
        assert_eq!(c1.reuse_priority(), 15);
        assert_eq!(c1.build_priority(), 215);
        assert_eq!(c15.reuse_priority(), 1);
        assert_eq!(c15.build_priority(), 201);
        assert!(c15.build_priority() > BUILD_COUNT_PRIORITY);
        assert!(BUILD_COUNT_PRIORITY > c1.reuse_priority());
    }

    #[test]
    fn describe_priority_round_trips() {
        assert_eq!(describe_priority(100), ("builds", "Number of builds"));
        assert_eq!(describe_priority(215), ("build", "Deprecated versions used"));
        assert_eq!(describe_priority(15), ("reuse", "Deprecated versions used"));
        assert_eq!(describe_priority(201), ("build", "Non-preferred targets"));
        assert_eq!(describe_priority(8).1, "Compiler mismatches");
        assert_eq!(describe_priority(1090).0, "error");
    }
}

//! [`SolveOptions`]: every knob of a concretization in one value.
//!
//! Before this module the options of a [`Concretizer`](crate::Concretizer) sprawled across six
//! `with_*` builder methods; a server carrying options *per request* had no
//! single value to hold, log, or serialize. `SolveOptions` collapses them:
//!
//! ```
//! use spack_concretizer::{Concretizer, SiteConfig, SolveOptions};
//! use spack_repo::builtin_repo;
//!
//! let repo = builtin_repo();
//! let options = SolveOptions::new().site(SiteConfig::minimal()).portfolio(2);
//! let result = Concretizer::new(&repo).with_options(options).concretize_str("zlib");
//! assert!(result.is_ok());
//! ```
//!
//! The old builders remain as thin forwarders (see [`crate::Concretizer::with_site`] and
//! friends) so existing code keeps compiling, but new code — and everything the
//! server does — should construct a `SolveOptions`.
//!
//! # Wire form
//!
//! `SolveOptions` holds live references (`database`) and full site descriptions,
//! neither of which can cross a socket. Its serialized counterpart is
//! [`crate::server::wire::RequestOptions`]: the site is named by preset
//! (`"quartz"`, `"lassen"`, `"minimal"`), the database by the `reuse` flag, and the
//! solver knobs (budget, portfolio, nogood store, seed) travel as plain JSON
//! fields. [`crate::server::wire::RequestOptions::apply`] folds a parsed wire value
//! onto a base `SolverConfig`, which is exactly what the server does per request.

use asp::{SolveBudget, SolverConfig};
use spack_store::Database;

use crate::SiteConfig;

/// Every option of a concretization, in one place: the site model, the optional
/// installed-package database for reuse, and the solver configuration (preset,
/// seed, portfolio width, nogood sharing, solve budget).
///
/// `Default` is the same configuration [`Concretizer::new`] starts from: the
/// Quartz-like site, no reuse, default solver. Construct with struct syntax or
/// with the `site`/`database`/... setters, then pass to
/// [`Concretizer::with_options`].
///
/// [`Concretizer::new`]: crate::Concretizer::new
/// [`Concretizer::with_options`]: crate::Concretizer::with_options
#[derive(Debug, Clone, Default)]
pub struct SolveOptions<'a> {
    /// The site configuration (compilers, operating systems, targets).
    pub site: SiteConfig,
    /// The installed-package database / buildcache to reuse from, when any.
    pub database: Option<&'a Database>,
    /// The solver configuration, including the per-solve budget, the portfolio
    /// width, and the session nogood-store switch.
    pub solver: SolverConfig,
}

impl<'a> SolveOptions<'a> {
    /// The default options: Quartz-like site, no reuse, default solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a specific site configuration.
    pub fn site(mut self, site: SiteConfig) -> Self {
        self.site = site;
        self
    }

    /// Enable reuse of the given installed-package database / buildcache.
    pub fn database(mut self, database: &'a Database) -> Self {
        self.database = Some(database);
        self
    }

    /// Use a specific solver configuration wholesale (preset, strategy, seed, ...).
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Bound every solve by a [`SolveBudget`] (wall deadline and/or conflict
    /// limit). An unbounded budget clears any previous one.
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.solver.budget = budget.is_bounded().then_some(budget);
        self
    }

    /// Race `k` differently-seeded solver configurations per optimizer search
    /// (`0` or `1` = serial). Results are byte-identical regardless of `k`.
    pub fn portfolio(mut self, k: usize) -> Self {
        self.solver.portfolio = k;
        self
    }

    /// Enable or disable the session's cross-request nogood store (default on).
    /// Results are byte-identical either way.
    pub fn nogood_store(mut self, enabled: bool) -> Self {
        self.solver.share_nogoods = enabled;
        self
    }

    /// Use a specific solver seed for randomized tie-breaking.
    pub fn seed(mut self, seed: u64) -> Self {
        self.solver.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_concretizer_new() {
        let options = SolveOptions::default();
        assert!(options.database.is_none());
        assert_eq!(options.site.target_family, SiteConfig::quartz().target_family);
        assert_eq!(options.solver.portfolio, SolverConfig::default().portfolio);
    }

    #[test]
    fn setters_compose() {
        let options = SolveOptions::new()
            .site(SiteConfig::lassen())
            .portfolio(4)
            .nogood_store(false)
            .seed(7)
            .budget(SolveBudget { wall_deadline: None, conflict_limit: Some(100) });
        assert_eq!(options.site.target_family, "ppc64le");
        assert_eq!(options.solver.portfolio, 4);
        assert!(!options.solver.share_nogoods);
        assert_eq!(options.solver.seed, 7);
        assert_eq!(options.solver.budget.unwrap().conflict_limit, Some(100));
    }

    #[test]
    fn unbounded_budget_clears() {
        let options = SolveOptions::new()
            .budget(SolveBudget { wall_deadline: None, conflict_limit: Some(1) })
            .budget(SolveBudget::unlimited());
        assert!(options.solver.budget.is_none());
    }
}

//! Package DSL and repository for the `spack-asp-rs` reproduction.
//!
//! This crate provides the package-recipe substrate the paper's concretizer consumes:
//!
//! * [`package`] — the metadata directives of a recipe (Fig. 2 of the paper):
//!   `version`, `variant`, `depends_on(when=)`, `conflicts`, `provides` (virtuals),
//!   exposed through [`PackageBuilder`],
//! * [`repo`] — the [`Repository`]: recipes indexed by name plus the virtual-provider
//!   index and the *possible dependencies* metric used in the evaluation (Fig. 7a–7c),
//! * [`builtin`] — a curated, realistic stack of ~50 recipes containing every package
//!   the paper uses as an example,
//! * [`synth`] — a deterministic generator of E4S-scale synthetic repositories used by
//!   the benchmark harness (a documented substitution for Spack's 6,000-package
//!   repository, see DESIGN.md).

#![warn(missing_docs)]

pub mod builtin;
pub mod package;
pub mod repo;
pub mod synth;

pub use builtin::{builtin_repo, example_package};
pub use package::{
    Conflict, DependsOn, PackageBuilder, PackageDef, Provides, VariantDef, VersionDecl,
};
pub use repo::Repository;
pub use synth::{e4s_roots, synth_repo, SynthConfig};

//! Curated built-in package recipes.
//!
//! These recipes model the packages the paper uses as running examples (the `example`
//! package of Fig. 2, `hpctoolkit` and `berkeleygw` from Section V-B, the
//! `mpileaks`/`callpath`/`dyninst` DAG of Fig. 4, the `hdf5` build of Fig. 6, and the
//! `cmake`/`openssl` pair used to motivate the split reuse criteria in Section VI), plus
//! enough of a realistic HPC software stack around them — MPI and LAPACK virtuals with
//! several providers, build tools, and common low-level libraries — to exercise the
//! concretizer the way a real repository does. Version numbers and constraints follow the
//! real Spack recipes in spirit but are trimmed to what the reproduction needs.

use crate::package::{PackageBuilder, PackageDef};
use crate::repo::Repository;

/// The `example` package of Fig. 2.
pub fn example_package() -> PackageDef {
    PackageBuilder::new("example")
        .version("1.1.0")
        .version("1.0.0")
        .variant_bool("bzip", true, "enable bzip")
        .depends_on_when("bzip2@1.0.7:", "+bzip")
        .depends_on("zlib")
        .depends_on_when("zlib@1.2.8:", "@1.1.0:")
        .depends_on("mpi")
        .conflicts("%intel")
        .conflicts("target=aarch64")
        .build()
}

/// Build the full curated repository.
pub fn builtin_repo() -> Repository {
    let mut repo = Repository::new();

    // ---- low-level libraries ----------------------------------------------------------
    repo.add_all([
        PackageBuilder::new("zlib")
            .version("1.2.12")
            .version("1.2.11")
            .version("1.2.8")
            .variant_bool("pic", true, "position independent code")
            .variant_bool("shared", true, "build shared libraries")
            .build(),
        PackageBuilder::new("bzip2")
            .version("1.0.8")
            .version("1.0.7")
            .version_deprecated("1.0.6")
            .variant_bool("shared", true, "build shared libraries")
            .depends_on("diffutils")
            .build(),
        PackageBuilder::new("xz")
            .version("5.2.5")
            .version("5.2.4")
            .variant_bool("pic", false, "position independent code")
            .build(),
        PackageBuilder::new("zstd").version("1.5.2").version("1.4.9").build(),
        PackageBuilder::new("libiconv").version("1.16").build(),
        PackageBuilder::new("libxml2")
            .version("2.9.13")
            .version("2.9.12")
            .depends_on("libiconv")
            .depends_on("xz")
            .depends_on("zlib@1.2.8:")
            .build(),
        PackageBuilder::new("libffi").version("3.4.2").version("3.3").build(),
        PackageBuilder::new("ncurses")
            .version("6.3")
            .version("6.2")
            .variant_bool("termlib", true, "build tinfo as separate library")
            .build(),
        PackageBuilder::new("readline").version("8.1").depends_on("ncurses@6:").build(),
        PackageBuilder::new("gdbm").version("1.21").depends_on("readline").build(),
        PackageBuilder::new("sqlite")
            .version("3.38.5")
            .version("3.37.2")
            .depends_on("readline")
            .depends_on("zlib")
            .build(),
        PackageBuilder::new("util-linux-uuid").version("2.37.4").build(),
        PackageBuilder::new("libpciaccess").version("0.16").build(),
        PackageBuilder::new("hwloc")
            .version("2.7.1")
            .version("2.6.0")
            .variant_bool("libxml2", true, "use libxml2 for XML support")
            .depends_on("libpciaccess")
            .depends_on_when("libxml2", "+libxml2")
            .build(),
        PackageBuilder::new("libelf").version("0.8.13").build(),
        PackageBuilder::new("libdwarf")
            .version("20180129")
            .depends_on("libelf")
            .depends_on("zlib")
            .build(),
        PackageBuilder::new("libsigsegv").version("2.13").build(),
        PackageBuilder::new("diffutils").version("3.8").depends_on("libiconv").build(),
        PackageBuilder::new("pkgconf").version("1.8.0").version("1.7.4").build(),
        PackageBuilder::new("expat").version("2.4.8").version("2.4.1").build(),
        PackageBuilder::new("libbsd").version("0.11.5").build(),
        PackageBuilder::new("libmd").version("1.0.4").build(),
        PackageBuilder::new("gettext")
            .version("0.21")
            .depends_on("libiconv")
            .depends_on("libxml2")
            .depends_on("ncurses")
            .build(),
        PackageBuilder::new("tar").version("1.34").depends_on("libiconv").build(),
        PackageBuilder::new("curl")
            .version("7.83.0")
            .version("7.80.0")
            .variant_values("tls", "openssl", &["openssl", "mbedtls"])
            .depends_on_when("openssl", "tls=openssl")
            .depends_on_when("mbedtls", "tls=mbedtls")
            .depends_on("zlib")
            .build(),
        PackageBuilder::new("mbedtls").version("3.1.0").version("2.28.0").build(),
        PackageBuilder::new("openssl")
            .version("1.1.1q")
            .version("1.1.1k")
            .version_deprecated("1.0.2u")
            .variant_bool("shared", true, "build shared libraries")
            .depends_on("zlib")
            .depends_on("perl@5.14.0:")
            .build(),
        PackageBuilder::new("perl")
            .version("5.34.1")
            .version("5.34.0")
            .variant_bool("threads", true, "enable ithreads")
            .depends_on("gdbm")
            .depends_on("berkeley-db")
            .build(),
        PackageBuilder::new("berkeley-db").version("18.1.40").build(),
        PackageBuilder::new("m4").version("1.4.19").depends_on("libsigsegv").build(),
        PackageBuilder::new("libtool").version("2.4.7").depends_on("m4").build(),
        PackageBuilder::new("autoconf")
            .version("2.71")
            .version("2.69")
            .depends_on("m4")
            .depends_on("perl")
            .build(),
        PackageBuilder::new("automake")
            .version("1.16.5")
            .depends_on("autoconf")
            .depends_on("perl")
            .build(),
        PackageBuilder::new("gmake").version("4.3").build(),
        PackageBuilder::new("python")
            .version("3.10.4")
            .version("3.9.12")
            .version("3.8.13")
            .variant_bool("ssl", true, "build the ssl module")
            .depends_on("libffi")
            .depends_on("expat")
            .depends_on("sqlite")
            .depends_on("zlib")
            .depends_on("xz")
            .depends_on("readline")
            .depends_on_when("openssl", "+ssl")
            .build(),
    ]);

    // ---- build tools --------------------------------------------------------------------
    repo.add_all([
        // The paper's Section VI example: a cmake built purely to minimize new builds
        // would drop openssl (and thus networking); the ssl variant defaults to true.
        PackageBuilder::new("cmake")
            .version("3.23.1")
            .version("3.21.4")
            .version("3.21.1")
            .version("3.20.2")
            .variant_bool("ssl", true, "build with SSL/networking support")
            .variant_bool("ncurses", true, "build the curses GUI")
            .depends_on_when("openssl", "+ssl")
            .depends_on_when("ncurses", "+ncurses")
            .depends_on("zlib")
            .build(),
        PackageBuilder::new("ninja").version("1.10.2").depends_on("python").build(),
        PackageBuilder::new("flex").version("2.6.4").depends_on("m4").build(),
        PackageBuilder::new("bison")
            .version("3.8.2")
            .depends_on("m4")
            .depends_on("diffutils")
            .build(),
    ]);

    // ---- MPI virtual and providers -----------------------------------------------------
    repo.add_all([
        PackageBuilder::new("mpich")
            .version("4.0.2")
            .version("3.4.2")
            .version("3.1")
            .variant_values("pmi", "pmi", &["pmi", "pmi2", "pmix"])
            .variant_values("device", "ch4", &["ch3", "ch4"])
            .provides("mpi")
            .depends_on("pkgconf")
            .depends_on("hwloc")
            .depends_on_when("libxml2", "device=ch4")
            // Known failure used in the completeness discussion of Section III-C2.
            .conflicts_when("^bzip2@1.0.7", "@3.1")
            .build(),
        PackageBuilder::new("openmpi")
            .version("4.1.3")
            .version("4.1.1")
            .version("3.1.6")
            .variant_bool("cuda", false, "CUDA support")
            .provides("mpi")
            .depends_on("hwloc")
            .depends_on("zlib")
            .depends_on("openssl")
            .depends_on_when("cuda", "+cuda")
            .build(),
        PackageBuilder::new("mvapich2")
            .version("2.3.7")
            .provides("mpi")
            .depends_on("bison")
            .depends_on("libpciaccess")
            .conflicts("%clang")
            .build(),
        PackageBuilder::new("cuda")
            .version("11.6.2")
            .version("11.4.2")
            .conflicts("target=aarch64")
            .build(),
    ]);

    // ---- BLAS/LAPACK virtuals and providers ---------------------------------------------
    repo.add_all([
        PackageBuilder::new("openblas")
            .version("0.3.20")
            .version("0.3.18")
            .variant_values("threads", "none", &["none", "openmp", "pthreads"])
            .variant_bool("shared", true, "build shared libraries")
            .provides("blas")
            .provides("lapack")
            .depends_on("perl")
            .build(),
        PackageBuilder::new("netlib-lapack")
            .version("3.10.1")
            .version("3.9.1")
            .provides("lapack")
            .provides("blas")
            .depends_on("cmake")
            .build(),
        PackageBuilder::new("intel-mkl")
            .version("2020.4.304")
            .provides("blas")
            .provides("lapack")
            .conflicts("target=aarch64")
            .conflicts("%clang")
            .build(),
    ]);

    // ---- the paper's example packages ----------------------------------------------------
    repo.add_all([
        example_package(),
        // Section V-B1: conditional dependency on mpi behind a default-false variant.
        PackageBuilder::new("hpctoolkit")
            .version("2022.04.15")
            .version("2021.10.15")
            .variant_bool("mpi", false, "build the MPI tool")
            .variant_bool("papi", true, "use PAPI hardware counters")
            .depends_on_when("mpi", "+mpi")
            .depends_on_when("papi", "+papi")
            .depends_on("boost")
            .depends_on("dyninst@10:")
            .depends_on("libelf")
            .depends_on("libxml2")
            .depends_on("zlib")
            .build(),
        // Section V-B3: a constraint on a specific provider of a virtual.
        PackageBuilder::new("berkeleygw")
            .version("3.0.1")
            .version("2.1")
            .variant_bool("openmp", true, "build with OpenMP support")
            .depends_on("lapack")
            .depends_on("mpi")
            .depends_on("fftw")
            .depends_on_when("openblas threads=openmp", "+openmp ^openblas")
            .depends_on_when("fftw+openmp", "+openmp")
            .build(),
        PackageBuilder::new("fftw")
            .version("3.3.10")
            .version("3.3.9")
            .variant_bool("mpi", true, "enable MPI")
            .variant_bool("openmp", false, "enable OpenMP")
            .depends_on_when("mpi", "+mpi")
            .build(),
        PackageBuilder::new("papi").version("6.0.0.1").version("5.7.0").build(),
        PackageBuilder::new("boost")
            .version("1.79.0")
            .version("1.78.0")
            .version("1.76.0")
            .variant_bool("shared", true, "build shared libraries")
            .variant_bool("multithreaded", true, "multi-threaded variants")
            .depends_on("bzip2")
            .depends_on("zlib")
            .depends_on("zstd")
            .depends_on("xz")
            .build(),
        PackageBuilder::new("dyninst")
            .version("12.1.0")
            .version("11.0.1")
            .version("10.2.1")
            .depends_on("boost@1.70.0:")
            .depends_on("libelf")
            .depends_on("libdwarf")
            .depends_on("intel-tbb")
            .depends_on_when("cmake", "@11:")
            .conflicts("%intel")
            .build(),
        PackageBuilder::new("intel-tbb").version("2021.6.0").version("2020.3").build(),
        // Fig. 4 DAG: mpileaks -> callpath, mpi; callpath -> dyninst, mpi; dyninst -> libdwarf, libelf.
        PackageBuilder::new("mpileaks")
            .version("1.0")
            .depends_on("mpi")
            .depends_on("callpath")
            .depends_on("adept-utils")
            .build(),
        PackageBuilder::new("callpath")
            .version("1.0.4")
            .depends_on("mpi")
            .depends_on("dyninst")
            .depends_on("libelf")
            .build(),
        PackageBuilder::new("adept-utils")
            .version("1.0.1")
            .depends_on("boost")
            .depends_on("mpi")
            .build(),
        // Fig. 6: the hdf5 build used for the reuse comparison.
        PackageBuilder::new("hdf5")
            .version("1.13.1")
            .version("1.12.1")
            .version("1.10.8")
            .version("1.10.2")
            .version_deprecated("1.8.22")
            .variant_bool("mpi", true, "enable parallel HDF5")
            .variant_bool("shared", true, "build shared libraries")
            .variant_bool("fortran", false, "build the Fortran interface")
            .variant_values("api", "default", &["default", "v18", "v110", "v112"])
            .depends_on("zlib@1.2.5:")
            .depends_on("cmake")
            .depends_on("pkgconf")
            .depends_on_when("mpi", "+mpi")
            .conflicts_when("api=v112", "@:1.10")
            .build(),
        PackageBuilder::new("netcdf-c")
            .version("4.8.1")
            .variant_bool("mpi", true, "enable parallel I/O")
            .depends_on("hdf5+mpi")
            .depends_on("curl")
            .depends_on_when("mpi", "+mpi")
            .build(),
        PackageBuilder::new("petsc")
            .version("3.17.1")
            .version("3.16.6")
            .variant_bool("hypre", true, "enable hypre preconditioners")
            .variant_bool("hdf5", true, "enable HDF5 I/O")
            .depends_on("mpi")
            .depends_on("blas")
            .depends_on("lapack")
            .depends_on("python")
            .depends_on_when("hypre", "+hypre")
            .depends_on_when("hdf5+mpi", "+hdf5")
            .build(),
        PackageBuilder::new("hypre")
            .version("2.24.0")
            .version("2.23.0")
            .variant_bool("openmp", false, "enable OpenMP")
            .depends_on("mpi")
            .depends_on("blas")
            .depends_on("lapack")
            .build(),
    ]);

    repo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_contains_paper_packages() {
        let repo = builtin_repo();
        for name in [
            "example",
            "hdf5",
            "zlib",
            "mpich",
            "openmpi",
            "hpctoolkit",
            "berkeleygw",
            "cmake",
            "openssl",
            "mpileaks",
            "callpath",
            "dyninst",
            "openblas",
        ] {
            assert!(repo.get(name).is_some(), "missing builtin package {name}");
        }
        assert!(repo.len() >= 40, "expected a realistic stack, got {} packages", repo.len());
    }

    #[test]
    fn virtuals_have_multiple_providers() {
        let repo = builtin_repo();
        assert!(repo.is_virtual("mpi"));
        assert!(repo.providers("mpi").len() >= 3);
        assert!(repo.is_virtual("lapack"));
        assert!(repo.providers("lapack").len() >= 3);
        assert!(repo.is_virtual("blas"));
    }

    #[test]
    fn hdf5_possible_dependencies_include_mpi_providers() {
        let repo = builtin_repo();
        let deps = repo.possible_dependencies(&["hdf5"]);
        for name in ["zlib", "cmake", "openssl", "mpi", "mpich", "openmpi"] {
            assert!(deps.contains(name), "hdf5 should possibly depend on {name}");
        }
    }

    #[test]
    fn possible_dependency_counts_form_two_groups() {
        // Packages that can reach the mpi virtual have far more possible dependencies
        // than self-contained leaf packages — the clustering discussed for Fig. 7c.
        let repo = builtin_repo();
        let zlib = repo.possible_dependency_count("zlib");
        let hdf5 = repo.possible_dependency_count("hdf5");
        let petsc = repo.possible_dependency_count("petsc");
        assert!(zlib < 5);
        assert!(hdf5 > 15);
        assert!(petsc >= hdf5);
    }

    #[test]
    fn hpctoolkit_mpi_variant_defaults_false() {
        let repo = builtin_repo();
        let pkg = repo.get("hpctoolkit").unwrap();
        assert_eq!(pkg.variant("mpi").unwrap().default, spack_spec::VariantValue::Bool(false));
        let dep = pkg.dependencies.iter().find(|d| d.spec.name.as_deref() == Some("mpi")).unwrap();
        assert!(!dep.when.is_empty(), "mpi dependency must be conditional");
    }
}

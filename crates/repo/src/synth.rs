//! Synthetic repository generator.
//!
//! The paper evaluates the concretizer on Spack's full repository (6,000+ packages) and
//! on the ~600 packages of E4S. Neither is available to this reproduction, so this module
//! generates repositories with the *statistical structure* the evaluation depends on:
//!
//! * a layered DAG of packages (utilities → libraries → applications) with a heavy-tailed
//!   dependency distribution,
//! * an `mpi`-like virtual with several providers whose own dependency subtrees are large,
//!   so that packages which can reach the virtual have far more *possible* dependencies
//!   than those which cannot — producing the two clusters visible in Fig. 7c,
//! * build tools reachable from the providers (the `mpilander -> cmake -> qt -> valgrind
//!   -> mpi` phenomenon described in Section VII-B: potential cycles that enlarge the
//!   search space even though real cycles are excluded),
//! * conditional dependencies gated by variants, multiple versions per package, and
//!   occasional conflicts.
//!
//! Generation is deterministic for a given [`SynthConfig::seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::package::PackageBuilder;
use crate::repo::Repository;

/// Configuration for the synthetic repository generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of (non-virtual) packages to generate.
    pub packages: usize,
    /// Number of providers of the `mpi`-like hub virtual.
    pub mpi_providers: usize,
    /// Fraction of library/application packages that depend on the hub virtual.
    pub mpi_fraction: f64,
    /// Maximum number of direct dependencies per package.
    pub max_deps: usize,
    /// Maximum number of versions per package.
    pub max_versions: usize,
    /// Probability that a dependency is conditional on a variant.
    pub conditional_fraction: f64,
    /// Length of an extra linear dependency chain (`chain-000 -> chain-001 -> ...`)
    /// rooted at `chain-root`; `0` disables the chain layer. Deep chains stress the
    /// grounder's semi-naive fixpoint (one new `node` atom per round).
    pub chain_depth: usize,
    /// Number of extra virtuals (`svc-0`, `svc-1`, ...), each with two providers and a
    /// client application depending on several of them; `0` disables the layer. Many
    /// virtuals stress provider selection (one choice rule per virtual per node).
    pub extra_virtuals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            packages: 120,
            mpi_providers: 3,
            mpi_fraction: 0.45,
            max_deps: 5,
            max_versions: 4,
            conditional_fraction: 0.25,
            chain_depth: 0,
            extra_virtuals: 0,
            seed: 0xE45,
        }
    }
}

impl SynthConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        SynthConfig { packages: 40, ..Default::default() }
    }

    /// A configuration sized like the E4S stack (hundreds of packages).
    pub fn e4s_like() -> Self {
        SynthConfig { packages: 600, ..Default::default() }
    }
}

/// Names of the layers of the generated repository, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Leaf utility packages (no dependencies).
    Utility,
    /// Build tools (depend on utilities, reachable from providers).
    BuildTool,
    /// MPI-like virtual providers.
    Provider,
    /// Ordinary libraries.
    Library,
    /// Top-level applications (the "E4S products" of the synthetic stack).
    Application,
}

/// Generate a synthetic repository.
pub fn synth_repo(config: &SynthConfig) -> Repository {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut repo = Repository::new();

    let n = config.packages.max(10);
    let n_util = (n / 5).max(3);
    let n_tools = (n / 15).max(2);
    let n_providers = config.mpi_providers.max(1);
    let n_apps = (n / 6).max(2);
    let n_libs = n.saturating_sub(n_util + n_tools + n_providers + n_apps).max(2);

    let util_names: Vec<String> = (0..n_util).map(|i| format!("util-{i:03}")).collect();
    let tool_names: Vec<String> = (0..n_tools).map(|i| format!("tool-{i:02}")).collect();
    let provider_names: Vec<String> = (0..n_providers).map(|i| format!("mpi-impl-{i}")).collect();
    let lib_names: Vec<String> = (0..n_libs).map(|i| format!("lib-{i:03}")).collect();
    let app_names: Vec<String> = (0..n_apps).map(|i| format!("app-{i:02}")).collect();

    // ---- utilities: leaves -------------------------------------------------------------
    for name in &util_names {
        repo.add(random_versions(PackageBuilder::new(name), &mut rng, config).build());
    }

    // ---- build tools: depend on a few utilities ----------------------------------------
    for (i, name) in tool_names.iter().enumerate() {
        let mut b = random_versions(PackageBuilder::new(name), &mut rng, config);
        for dep in pick(&util_names, 1 + i % 3, &mut rng) {
            b = b.depends_on(&dep);
        }
        // The last tool can, behind a non-default variant, pull in a package that depends
        // on mpi — the potential-cycle structure described in the paper.
        if i + 1 == tool_names.len() && !lib_names.is_empty() {
            b = b
                .variant_bool("heavy", false, "enable the heavyweight backend")
                .depends_on_when(&lib_names[0], "+heavy");
        }
        repo.add(b.build());
    }

    // ---- providers of the virtual -------------------------------------------------------
    for (i, name) in provider_names.iter().enumerate() {
        let mut b = random_versions(PackageBuilder::new(name), &mut rng, config)
            .provides("mpi")
            .variant_values("pmi", "pmi", &["pmi", "pmi2"]);
        for dep in pick(&util_names, 2 + i % 2, &mut rng) {
            b = b.depends_on(&dep);
        }
        for dep in pick(&tool_names, 1 + i % 2, &mut rng) {
            b = b.depends_on(&dep);
        }
        if i == 0 {
            b = b.conflicts("%intel");
        }
        repo.add(b.build());
    }

    // ---- libraries -----------------------------------------------------------------------
    for (i, name) in lib_names.iter().enumerate() {
        let mut b = random_versions(PackageBuilder::new(name), &mut rng, config);
        // Dependencies on earlier layers (and earlier libraries, keeping the DAG acyclic).
        let n_deps = 1 + rng.gen_range(0..config.max_deps.max(1));
        let mut pool: Vec<String> = Vec::new();
        pool.extend_from_slice(&util_names);
        pool.extend_from_slice(&tool_names);
        pool.extend_from_slice(&lib_names[..i]);
        let mut variant_counter = 0;
        for dep in pick(&pool, n_deps, &mut rng) {
            if rng.gen_bool(config.conditional_fraction) {
                let vname = format!("feat{variant_counter}");
                variant_counter += 1;
                let default = rng.gen_bool(0.5);
                b = b
                    .variant_bool(&vname, default, "synthetic feature flag")
                    .depends_on_when(&dep, &format!("+{vname}"));
            } else {
                b = b.depends_on(&dep);
            }
        }
        if rng.gen_bool(config.mpi_fraction) {
            b = b.variant_bool("mpi", true, "enable MPI").depends_on_when("mpi", "+mpi");
        }
        if rng.gen_bool(0.05) {
            b = b.conflicts("%intel");
        }
        repo.add(b.build());
    }

    // ---- applications ---------------------------------------------------------------------
    for name in &app_names {
        let mut b = random_versions(PackageBuilder::new(name), &mut rng, config);
        let n_deps = 2 + rng.gen_range(0..config.max_deps.max(1));
        for dep in pick(&lib_names, n_deps, &mut rng) {
            b = b.depends_on(&dep);
        }
        if rng.gen_bool(config.mpi_fraction) {
            b = b.depends_on("mpi");
        }
        for dep in pick(&tool_names, 1, &mut rng) {
            b = b.depends_on(&dep);
        }
        repo.add(b.build());
    }

    // ---- optional deep chain (stresses the grounder's fixpoint) ------------------------
    // Drawn from a derived RNG so repositories generated with `chain_depth == 0` are
    // byte-identical to those of earlier versions of this generator.
    if config.chain_depth > 0 {
        let mut chain_rng = StdRng::seed_from_u64(config.seed ^ 0xC4A1_4000);
        let names: Vec<String> = (0..config.chain_depth).map(|i| format!("chain-{i:03}")).collect();
        for (i, name) in names.iter().enumerate() {
            let mut b = random_versions(PackageBuilder::new(name), &mut chain_rng, config);
            if i + 1 < names.len() {
                b = b.depends_on(&names[i + 1]);
            } else if let Some(dep) = util_names.first() {
                b = b.depends_on(dep);
            }
            repo.add(b.build());
        }
        let mut root = random_versions(PackageBuilder::new("chain-root"), &mut chain_rng, config);
        root = root.depends_on(&names[0]);
        repo.add(root.build());
    }

    // ---- optional extra virtuals (stress provider selection) ---------------------------
    if config.extra_virtuals > 0 {
        let mut virt_rng = StdRng::seed_from_u64(config.seed ^ 0x51C_E000);
        let virtuals: Vec<String> =
            (0..config.extra_virtuals).map(|v| format!("svc-{v}")).collect();
        for (v, virt) in virtuals.iter().enumerate() {
            for p in 0..2 {
                let mut b = random_versions(
                    PackageBuilder::new(&format!("svc{v}-impl-{p}")),
                    &mut virt_rng,
                    config,
                )
                .provides(virt);
                for dep in pick(&util_names, 1 + p, &mut virt_rng) {
                    b = b.depends_on(&dep);
                }
                repo.add(b.build());
            }
        }
        // Client applications, each depending on a sliding window of the virtuals.
        let clients = (config.extra_virtuals / 2).max(1);
        for c in 0..clients {
            let mut b = random_versions(
                PackageBuilder::new(&format!("vapp-{c:02}")),
                &mut virt_rng,
                config,
            );
            for (v, virt) in virtuals.iter().enumerate() {
                if v % clients == c || v == (c + 1) % virtuals.len() {
                    b = b.depends_on(virt);
                }
            }
            for dep in pick(&util_names, 2, &mut virt_rng) {
                b = b.depends_on(&dep);
            }
            repo.add(b.build());
        }
    }

    repo
}

/// The names of the application-layer packages of a synthetic repository — the analogue
/// of the ~600 top-level E4S products used in Section VII-C.
pub fn e4s_roots(repo: &Repository) -> Vec<String> {
    repo.names().filter(|n| n.starts_with("app-")).map(|s| s.to_string()).collect()
}

fn random_versions(
    mut builder: PackageBuilder,
    rng: &mut StdRng,
    config: &SynthConfig,
) -> PackageBuilder {
    let n = 1 + rng.gen_range(0..config.max_versions.max(1));
    let major: u32 = rng.gen_range(1..6);
    for i in 0..n {
        let minor = (n - i) * 2;
        let patch = rng.gen_range(0..4);
        builder = builder.version(&format!("{major}.{minor}.{patch}"));
    }
    if rng.gen_bool(0.1) {
        builder = builder.version_deprecated(&format!("{}.0.0", major.saturating_sub(1).max(1)));
    }
    builder
}

fn pick(pool: &[String], count: usize, rng: &mut StdRng) -> Vec<String> {
    if pool.is_empty() {
        return Vec::new();
    }
    let mut chosen = Vec::new();
    for _ in 0..count.min(pool.len()) {
        let candidate = pool[rng.gen_range(0..pool.len())].clone();
        if !chosen.contains(&candidate) {
            chosen.push(candidate);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synth_repo(&SynthConfig::small());
        let b = synth_repo(&SynthConfig::small());
        assert_eq!(a.len(), b.len());
        let names_a: Vec<&str> = a.names().collect();
        let names_b: Vec<&str> = b.names().collect();
        assert_eq!(names_a, names_b);
        for name in names_a {
            assert_eq!(a.get(name), b.get(name), "package {name} differs between runs");
        }
    }

    #[test]
    fn chain_and_virtual_layers_are_generated_on_demand() {
        let base = synth_repo(&SynthConfig::small());
        assert!(base.get("chain-root").is_none());
        assert!(base.get("svc0-impl-0").is_none());

        let shaped =
            synth_repo(&SynthConfig { chain_depth: 12, extra_virtuals: 4, ..SynthConfig::small() });
        assert!(shaped.get("chain-root").is_some());
        assert!(shaped.get("chain-011").is_some());
        assert_eq!(shaped.providers("svc-2").len(), 2);
        assert!(shaped.get("vapp-00").is_some());
        // The chain really is a chain: each link has exactly one dependency.
        let link = shaped.get("chain-003").unwrap();
        assert_eq!(link.dependencies.len(), 1);
        assert_eq!(link.dependencies[0].spec.name.as_deref(), Some("chain-004"));
        // Base packages are unchanged by the extra layers.
        for name in base.names() {
            assert_eq!(base.get(name), shaped.get(name), "package {name} changed");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_repo(&SynthConfig::small());
        let b = synth_repo(&SynthConfig { seed: 99, ..SynthConfig::small() });
        let differs = a.names().any(|n| a.get(n) != b.get(n));
        assert!(differs);
    }

    #[test]
    fn has_expected_layers_and_virtual() {
        let repo = synth_repo(&SynthConfig::default());
        assert!(repo.is_virtual("mpi"));
        assert!(repo.providers("mpi").len() >= 3);
        assert!(!e4s_roots(&repo).is_empty());
        assert!(repo.names().any(|n| n.starts_with("util-")));
        assert!(repo.names().any(|n| n.starts_with("lib-")));
    }

    #[test]
    fn repo_size_matches_config() {
        let config = SynthConfig { packages: 150, ..Default::default() };
        let repo = synth_repo(&config);
        // Within a small tolerance (layer rounding).
        assert!((140..=160).contains(&repo.len()), "got {}", repo.len());
    }

    #[test]
    fn possible_dependency_counts_show_two_clusters() {
        // The property behind Fig. 7c: packages that can reach the mpi virtual have many
        // more possible dependencies than the self-contained ones.
        let repo = synth_repo(&SynthConfig::default());
        let mpi_deps = repo.possible_dependencies(&["mpi"]).len();
        let mut low = 0usize;
        let mut high = 0usize;
        for name in repo.names() {
            let count = repo.possible_dependency_count(name);
            if count >= mpi_deps {
                high += 1;
            } else if count < mpi_deps / 2 {
                low += 1;
            }
        }
        assert!(high > 0, "some packages must reach the mpi subtree");
        assert!(low > 0, "some packages must be self-contained");
    }

    #[test]
    fn dependencies_reference_existing_packages_or_virtuals() {
        let repo = synth_repo(&SynthConfig::default());
        for pkg in repo.packages() {
            for dep in pkg.possible_dependency_names() {
                assert!(
                    repo.get(dep).is_some() || repo.is_virtual(dep),
                    "{} depends on unknown {dep}",
                    pkg.name
                );
            }
        }
    }

    #[test]
    fn acyclic_by_construction_for_default_variants() {
        // Libraries only depend on earlier libraries; a depth-first walk over
        // unconditional dependencies must terminate without revisiting a package on the
        // current path.
        let repo = synth_repo(&SynthConfig::default());
        fn visit(
            repo: &Repository,
            name: &str,
            path: &mut Vec<String>,
            seen: &mut std::collections::BTreeSet<String>,
        ) {
            if path.contains(&name.to_string()) {
                panic!("cycle through {name}");
            }
            if !seen.insert(name.to_string()) {
                return;
            }
            path.push(name.to_string());
            if let Some(pkg) = repo.get(name) {
                for dep in &pkg.dependencies {
                    if dep.when.is_empty() {
                        if let Some(dep_name) = dep.spec.name.as_deref() {
                            if repo.get(dep_name).is_some() {
                                visit(repo, dep_name, path, seen);
                            }
                        }
                    }
                }
            }
            path.pop();
        }
        let mut seen = std::collections::BTreeSet::new();
        for name in repo.names() {
            visit(&repo, name, &mut Vec::new(), &mut seen);
        }
    }
}

//! The package DSL: the Rust analogue of Spack's `package.py` directives (Fig. 2).
//!
//! A [`PackageDef`] collects the metadata directives of one package recipe:
//! `version(...)`, `variant(...)`, `depends_on(..., when=...)`, `conflicts(...)`, and
//! `provides(...)`. The builder API mirrors the DSL closely, so the `example` package of
//! Fig. 2 is written as:
//!
//! ```
//! use spack_repo::PackageBuilder;
//!
//! let example = PackageBuilder::new("example")
//!     .version("1.1.0")
//!     .version("1.0.0")
//!     .variant_bool("bzip", true, "enable bzip")
//!     .depends_on_when("bzip2@1.0.7:", "+bzip")
//!     .depends_on("zlib")
//!     .depends_on_when("zlib@1.2.8:", "@1.1.0:")
//!     .depends_on("mpi")
//!     .conflicts("%intel")
//!     .build();
//! assert_eq!(example.versions.len(), 2);
//! ```

use spack_spec::{parse_spec, Spec, VariantValue, Version};

/// A declared version of a package. Preference order is the declaration order: the first
/// declared version is the most preferred (Spack sorts by version number; recipes here
/// declare newest-first, as real recipes do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDecl {
    /// The version.
    pub version: Version,
    /// True when the version is deprecated (highest-priority criterion in Table II).
    pub deprecated: bool,
}

/// A declared variant and its default value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// Default value.
    pub default: VariantValue,
    /// Allowed values for multi-valued variants (empty for boolean variants).
    pub values: Vec<String>,
    /// Human-readable description.
    pub description: String,
}

/// A `depends_on(spec, when=condition)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependsOn {
    /// Constraint on the dependency (name + any further constraints).
    pub spec: Spec,
    /// Condition on the *dependent* under which the dependency exists (anonymous spec).
    pub when: Spec,
}

/// A `conflicts(spec, when=condition)` directive: configurations known not to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicting constraint (anonymous or named spec matched against this package).
    pub spec: Spec,
    /// Condition under which the conflict applies.
    pub when: Spec,
}

/// A `provides(virtual, when=condition)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provides {
    /// The virtual package name (e.g. `mpi`, `lapack`).
    pub virtual_name: String,
    /// Constraint on the virtual being provided (e.g. `mpi@3:` — stored as a spec).
    pub virtual_spec: Spec,
    /// Condition on the provider under which it provides the virtual.
    pub when: Spec,
}

/// A package recipe's metadata: everything the concretizer needs to reason about it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackageDef {
    /// Package name.
    pub name: String,
    /// Declared versions, most preferred first.
    pub versions: Vec<VersionDecl>,
    /// Declared variants.
    pub variants: Vec<VariantDef>,
    /// Dependency directives.
    pub dependencies: Vec<DependsOn>,
    /// Conflict directives.
    pub conflicts: Vec<Conflict>,
    /// Virtual packages provided.
    pub provides: Vec<Provides>,
}

impl PackageDef {
    /// Find a variant definition by name.
    pub fn variant(&self, name: &str) -> Option<&VariantDef> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// Preferred (first declared, non-deprecated) version.
    pub fn preferred_version(&self) -> Option<&Version> {
        self.versions.iter().find(|v| !v.deprecated).or(self.versions.first()).map(|v| &v.version)
    }

    /// Names of packages (or virtuals) this package may depend on under *some* condition.
    pub fn possible_dependency_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> =
            self.dependencies.iter().filter_map(|d| d.spec.name.as_deref()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Does this package provide the given virtual under some condition?
    pub fn may_provide(&self, virtual_name: &str) -> bool {
        self.provides.iter().any(|p| p.virtual_name == virtual_name)
    }
}

/// Builder for [`PackageDef`], mirroring the package DSL.
#[derive(Debug, Clone, Default)]
pub struct PackageBuilder {
    def: PackageDef,
}

impl PackageBuilder {
    /// Start a recipe for `name`.
    pub fn new(name: &str) -> Self {
        PackageBuilder { def: PackageDef { name: name.to_string(), ..Default::default() } }
    }

    /// Declare a version (newest first, like real recipes).
    pub fn version(mut self, v: &str) -> Self {
        self.def.versions.push(VersionDecl { version: Version::new(v), deprecated: false });
        self
    }

    /// Declare a deprecated version.
    pub fn version_deprecated(mut self, v: &str) -> Self {
        self.def.versions.push(VersionDecl { version: Version::new(v), deprecated: true });
        self
    }

    /// Declare a boolean variant with its default.
    pub fn variant_bool(mut self, name: &str, default: bool, description: &str) -> Self {
        self.def.variants.push(VariantDef {
            name: name.to_string(),
            default: VariantValue::Bool(default),
            values: Vec::new(),
            description: description.to_string(),
        });
        self
    }

    /// Declare a multi-valued variant with its default and allowed values.
    pub fn variant_values(mut self, name: &str, default: &str, values: &[&str]) -> Self {
        self.def.variants.push(VariantDef {
            name: name.to_string(),
            default: VariantValue::Value(default.to_string()),
            values: values.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
        });
        self
    }

    /// `depends_on("spec")`
    pub fn depends_on(self, spec: &str) -> Self {
        self.depends_on_when(spec, "")
    }

    /// `depends_on("spec", when="condition")`
    pub fn depends_on_when(mut self, spec: &str, when: &str) -> Self {
        let spec = parse_spec(spec).unwrap_or_else(|e| panic!("bad dependency spec '{spec}': {e}"));
        assert!(spec.name.is_some(), "dependency specs must name a package");
        let when = parse_spec(when).unwrap_or_else(|e| panic!("bad when= spec '{when}': {e}"));
        self.def.dependencies.push(DependsOn { spec, when });
        self
    }

    /// `conflicts("spec")`
    pub fn conflicts(self, spec: &str) -> Self {
        self.conflicts_when(spec, "")
    }

    /// `conflicts("spec", when="condition")`
    pub fn conflicts_when(mut self, spec: &str, when: &str) -> Self {
        let spec = parse_spec(spec).unwrap_or_else(|e| panic!("bad conflict spec '{spec}': {e}"));
        let when = parse_spec(when).unwrap_or_else(|e| panic!("bad when= spec '{when}': {e}"));
        self.def.conflicts.push(Conflict { spec, when });
        self
    }

    /// `provides("virtual")`
    pub fn provides(self, virtual_spec: &str) -> Self {
        self.provides_when(virtual_spec, "")
    }

    /// `provides("virtual", when="condition")`
    pub fn provides_when(mut self, virtual_spec: &str, when: &str) -> Self {
        let vspec = parse_spec(virtual_spec)
            .unwrap_or_else(|e| panic!("bad provides spec '{virtual_spec}': {e}"));
        let name = vspec.name.clone().expect("provides() requires a virtual name");
        let when = parse_spec(when).unwrap_or_else(|e| panic!("bad when= spec '{when}': {e}"));
        self.def.provides.push(Provides { virtual_name: name, virtual_spec: vspec, when });
        self
    }

    /// Finish the recipe.
    pub fn build(self) -> PackageDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::VariantValue;

    fn example() -> PackageDef {
        // Fig. 2 of the paper.
        PackageBuilder::new("example")
            .version("1.1.0")
            .version("1.0.0")
            .variant_bool("bzip", true, "enable bzip")
            .depends_on_when("bzip2@1.0.7:", "+bzip")
            .depends_on("zlib")
            .depends_on_when("zlib@1.2.8:", "@1.1.0:")
            .depends_on("mpi")
            .conflicts("%intel")
            .conflicts("target=aarch64")
            .build()
    }

    #[test]
    fn example_package_metadata() {
        let pkg = example();
        assert_eq!(pkg.name, "example");
        assert_eq!(pkg.versions.len(), 2);
        assert_eq!(pkg.preferred_version().unwrap().to_string(), "1.1.0");
        assert_eq!(pkg.variant("bzip").unwrap().default, VariantValue::Bool(true));
        assert_eq!(pkg.dependencies.len(), 4);
        assert_eq!(pkg.conflicts.len(), 2);
        assert_eq!(pkg.possible_dependency_names(), vec!["bzip2", "mpi", "zlib"]);
    }

    #[test]
    fn conditional_dependency_conditions_are_parsed() {
        let pkg = example();
        let bzip_dep =
            pkg.dependencies.iter().find(|d| d.spec.name.as_deref() == Some("bzip2")).unwrap();
        assert_eq!(bzip_dep.when.variants.get("bzip"), Some(&VariantValue::Bool(true)));
        let zlib_versioned = pkg
            .dependencies
            .iter()
            .find(|d| d.spec.name.as_deref() == Some("zlib") && !d.spec.versions.is_any())
            .unwrap();
        assert!(!zlib_versioned.when.versions.is_any());
    }

    #[test]
    fn provides_records_virtuals() {
        let mpich =
            PackageBuilder::new("mpich").version("4.1").version("3.4.2").provides("mpi").build();
        assert!(mpich.may_provide("mpi"));
        assert!(!mpich.may_provide("lapack"));

        let openblas = PackageBuilder::new("intel-mkl")
            .version("2021.4")
            .provides_when("lapack", "@12.0:")
            .build();
        assert!(openblas.may_provide("lapack"));
        assert!(!openblas.provides[0].when.versions.is_any());
    }

    #[test]
    fn deprecated_versions_are_not_preferred() {
        let pkg = PackageBuilder::new("p").version_deprecated("2.0.0").version("1.9.0").build();
        assert_eq!(pkg.preferred_version().unwrap().to_string(), "1.9.0");
    }

    #[test]
    #[should_panic(expected = "dependency specs must name a package")]
    fn anonymous_dependency_is_rejected() {
        let _ = PackageBuilder::new("p").depends_on("+mpi");
    }
}

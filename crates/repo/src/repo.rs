//! The package repository: a named collection of package recipes plus the virtual
//! provider index.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::package::PackageDef;

/// A repository of package recipes, indexed by name, with a virtual-provider index.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    packages: BTreeMap<String, PackageDef>,
    providers: BTreeMap<String, Vec<String>>,
}

impl Repository {
    /// Create an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a package recipe.
    pub fn add(&mut self, package: PackageDef) {
        for p in &package.provides {
            let entry = self.providers.entry(p.virtual_name.clone()).or_default();
            if !entry.contains(&package.name) {
                entry.push(package.name.clone());
            }
        }
        self.packages.insert(package.name.clone(), package);
    }

    /// Add many recipes.
    pub fn add_all(&mut self, packages: impl IntoIterator<Item = PackageDef>) {
        for p in packages {
            self.add(p);
        }
    }

    /// Look up a package by name.
    pub fn get(&self, name: &str) -> Option<&PackageDef> {
        self.packages.get(name)
    }

    /// Number of packages in the repository.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// True when the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// All package names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.packages.keys().map(|s| s.as_str())
    }

    /// All packages.
    pub fn packages(&self) -> impl Iterator<Item = &PackageDef> {
        self.packages.values()
    }

    /// Is this name a virtual package (i.e. not a real recipe but provided by others)?
    pub fn is_virtual(&self, name: &str) -> bool {
        !self.packages.contains_key(name) && self.providers.contains_key(name)
    }

    /// The packages that may provide a virtual.
    pub fn providers(&self, virtual_name: &str) -> &[String] {
        self.providers.get(virtual_name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All virtual package names.
    pub fn virtuals(&self) -> impl Iterator<Item = &str> {
        self.providers.keys().map(|s| s.as_str())
    }

    /// The set of packages that could possibly appear in a solve rooted at `roots`:
    /// the transitive closure over every conditional dependency and, for virtual
    /// dependencies, over every possible provider. This is the "number of possible
    /// dependencies" metric used on the x-axis of Figures 7a–7c in the paper (it measures
    /// the size of the problem handed to the solver, not of the solution).
    pub fn possible_dependencies(&self, roots: &[&str]) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = roots.iter().map(|s| s.to_string()).collect();
        while let Some(name) = queue.pop_front() {
            if !seen.insert(name.clone()) {
                continue;
            }
            // A virtual expands to all of its providers.
            if self.is_virtual(&name) {
                for p in self.providers(&name) {
                    if !seen.contains(p) {
                        queue.push_back(p.clone());
                    }
                }
                continue;
            }
            if let Some(pkg) = self.packages.get(&name) {
                for dep in pkg.possible_dependency_names() {
                    if !seen.contains(dep) {
                        queue.push_back(dep.to_string());
                    }
                }
            }
        }
        seen.remove("");
        seen
    }

    /// Convenience: the number of possible dependencies of a single package, excluding
    /// the package itself.
    pub fn possible_dependency_count(&self, package: &str) -> usize {
        let deps = self.possible_dependencies(&[package]);
        deps.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageBuilder;

    fn sample_repo() -> Repository {
        let mut repo = Repository::new();
        repo.add(
            PackageBuilder::new("hdf5")
                .version("1.12.1")
                .version("1.10.2")
                .variant_bool("mpi", true, "enable MPI")
                .depends_on("zlib")
                .depends_on_when("mpi", "+mpi")
                .build(),
        );
        repo.add(PackageBuilder::new("zlib").version("1.2.11").build());
        repo.add(
            PackageBuilder::new("mpich")
                .version("3.4.2")
                .provides("mpi")
                .depends_on("pkgconf")
                .build(),
        );
        repo.add(
            PackageBuilder::new("openmpi")
                .version("4.1.1")
                .provides("mpi")
                .depends_on("hwloc")
                .build(),
        );
        repo.add(PackageBuilder::new("pkgconf").version("1.8.0").build());
        repo.add(PackageBuilder::new("hwloc").version("2.7.0").build());
        repo
    }

    #[test]
    fn virtual_provider_index() {
        let repo = sample_repo();
        assert!(repo.is_virtual("mpi"));
        assert!(!repo.is_virtual("zlib"));
        assert!(!repo.is_virtual("nonexistent"));
        let providers = repo.providers("mpi");
        assert!(providers.contains(&"mpich".to_string()));
        assert!(providers.contains(&"openmpi".to_string()));
        assert_eq!(repo.virtuals().count(), 1);
    }

    #[test]
    fn possible_dependencies_expand_virtuals_and_conditions() {
        let repo = sample_repo();
        let deps = repo.possible_dependencies(&["hdf5"]);
        // hdf5 itself, zlib, the virtual mpi, both providers, and their dependencies.
        for name in ["hdf5", "zlib", "mpi", "mpich", "openmpi", "pkgconf", "hwloc"] {
            assert!(deps.contains(name), "missing {name}: {deps:?}");
        }
        assert_eq!(repo.possible_dependency_count("zlib"), 0);
        assert!(repo.possible_dependency_count("hdf5") >= 6);
    }

    #[test]
    fn add_replaces_and_len_counts() {
        let mut repo = sample_repo();
        let n = repo.len();
        repo.add(PackageBuilder::new("zlib").version("1.2.12").build());
        assert_eq!(repo.len(), n);
        assert_eq!(repo.get("zlib").unwrap().versions[0].version.to_string(), "1.2.12");
    }
}
